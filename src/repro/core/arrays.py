"""Deferred array handles: the user-facing API of next-generation RIOT.

``RiotVector`` and ``RiotMatrix`` wrap DAG nodes and overload Python
operators, so user code reads like the R programs in the paper::

    d = ((x - xs)**2 + (y - ys)**2).sqrt() + ((x - xe)**2 + (y - ye)**2).sqrt()
    z = d[s]          # deferred; nothing computed yet
    z.values()        # forces exactly the selected elements

Modification is pure: ``b.assign(b > 100, 100)`` returns the *new state*
(the ``[]<-`` operator of Figure 2) and leaves ``b`` untouched — matching R
value semantics and enabling the subscript-pushdown rewrite.
"""

from __future__ import annotations

import numpy as np

from .expr import (Crossprod, Inverse, Map, MatMul, Node, Range, Reduce,
                   Scalar, Solve, Subscript, SubscriptAssign, Transpose)


def _scalarize(value) -> Node:
    if isinstance(value, (RiotVector, RiotMatrix)):
        return value.node
    if isinstance(value, Node):
        return value
    return Scalar(float(value))


class _Deferred:
    """Shared operator plumbing for vector and matrix handles."""

    def __init__(self, session, node: Node) -> None:
        self.session = session
        self.node = node

    # -- arithmetic ------------------------------------------------------
    def _binary(self, op: str, other, swap: bool = False):
        left, right = _scalarize(self), _scalarize(other)
        if swap:
            left, right = right, left
        return self._wrap(Map(op, left, right))

    def __add__(self, other):
        return self._binary("+", other)

    def __radd__(self, other):
        return self._binary("+", other, swap=True)

    def __sub__(self, other):
        return self._binary("-", other)

    def __rsub__(self, other):
        return self._binary("-", other, swap=True)

    def __mul__(self, other):
        return self._binary("*", other)

    def __rmul__(self, other):
        return self._binary("*", other, swap=True)

    def __truediv__(self, other):
        return self._binary("/", other)

    def __rtruediv__(self, other):
        return self._binary("/", other, swap=True)

    def __pow__(self, other):
        return self._binary("pow", other)

    def __mod__(self, other):
        return self._binary("mod", other)

    def __neg__(self):
        return self._wrap(Map("neg", self.node))

    # -- comparisons (produce logical arrays) ------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return self._binary("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other):
        return self._binary("<", other)

    def __le__(self, other):
        return self._binary("<=", other)

    def __gt__(self, other):
        return self._binary(">", other)

    def __ge__(self, other):
        return self._binary(">=", other)

    __hash__ = None  # handles are not hashable (== is elementwise)

    # -- elementwise functions ----------------------------------------------
    def sqrt(self):
        return self._wrap(Map("sqrt", self.node))

    def abs(self):
        return self._wrap(Map("abs", self.node))

    def exp(self):
        return self._wrap(Map("exp", self.node))

    def log(self):
        return self._wrap(Map("log", self.node))

    def ifelse(self, then_value, else_value):
        """Elementwise conditional with self as the (logical) condition."""
        return self._wrap(Map("ifelse", self.node,
                              _scalarize(then_value),
                              _scalarize(else_value)))

    # -- reductions --------------------------------------------------------
    def sum(self) -> float:
        return float(self.session.force(Reduce("sum", self.node)))

    def mean(self) -> float:
        return float(self.session.force(Reduce("mean", self.node)))

    def min(self) -> float:
        return float(self.session.force(Reduce("min", self.node)))

    def max(self) -> float:
        return float(self.session.force(Reduce("max", self.node)))

    # -- sparsity metadata -------------------------------------------------
    @property
    def density(self) -> float:
        """Estimated nonzero fraction of this handle's DAG node."""
        return self.node.density

    @property
    def estimated_nnz(self) -> float:
        """Expected nonzero count under the density estimate."""
        return self.node.estimated_nnz

    # -- evaluation --------------------------------------------------------
    def force(self):
        """Materialize this handle's DAG into the tile store."""
        return self.session.force(self.node)

    def values(self) -> np.ndarray:
        """Force and return the result as a numpy array."""
        return self.session.values(self.node)

    def explain(self, analyze: bool = False) -> str:
        return self.session.explain(self.node, analyze=analyze)

    def _wrap(self, node: Node):
        raise NotImplementedError


class RiotVector(_Deferred):
    """A deferred 1-D array."""

    def _wrap(self, node: Node):
        if node.ndim == 1:
            return RiotVector(self.session, node)
        if node.ndim == 2:
            return RiotMatrix(self.session, node)
        return node

    @property
    def length(self) -> int:
        return self.node.shape[0]

    def __len__(self) -> int:
        return self.length

    # -- subscripts -----------------------------------------------------------
    def _index_node(self, index) -> Node:
        if isinstance(index, RiotVector):
            return index.node
        if isinstance(index, slice):
            lo = 1 if index.start is None else int(index.start)
            hi = self.length if index.stop is None else int(index.stop)
            if index.step not in (None, 1):
                raise ValueError("only unit-step slices are supported")
            return Range(lo, hi)
        if isinstance(index, (int, np.integer)):
            return Range(int(index), int(index))
        arr = np.asarray(index)
        if arr.dtype == bool:
            raise TypeError(
                "boolean gather is not deferred; use .assign for masked "
                "updates or which() semantics via numpy first")
        from .expr import ArrayInput
        stored = self.session.store.vector_from_numpy(
            arr.astype(np.float64))
        return ArrayInput(stored, name="idx")

    def __getitem__(self, index) -> "RiotVector":
        """1-based subscript, deferred (``d[s]`` of Example 1)."""
        return RiotVector(self.session,
                          Subscript(self.node, self._index_node(index)))

    def assign(self, index, value) -> "RiotVector":
        """The pure ``[]<-``: returns the NEW state (Figure 2).

        ``index`` may be a logical RiotVector mask (``b > 100``) or a
        positional index vector/slice.
        """
        value_node = _scalarize(value)
        if isinstance(index, RiotVector) and _is_logical(index.node):
            return RiotVector(self.session, SubscriptAssign(
                self.node, index.node, value_node, logical_mask=True))
        return RiotVector(self.session, SubscriptAssign(
            self.node, self._index_node(index), value_node,
            logical_mask=False))

    def head(self, n: int = 6) -> "RiotVector":
        return self[1:n]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RiotVector(n={self.length}, deferred)"


class RiotMatrix(_Deferred):
    """A deferred 2-D array."""

    @classmethod
    def from_coo(cls, session, rows, cols, values,
                 shape: tuple[int, int],
                 name: str | None = None) -> "RiotMatrix":
        """Build a sparse matrix handle from 0-based COO triplets.

        Storage is CSR tiles with a per-tile nnz directory (empty tiles
        occupy zero pages); the handle's density drives chain ordering
        and sparse/dense kernel selection in the rewriter.
        """
        return session.sparse_matrix(rows, cols, values, shape,
                                     name=name)

    def _wrap(self, node: Node):
        if node.ndim == 2:
            return RiotMatrix(self.session, node)
        if node.ndim == 1:
            return RiotVector(self.session, node)
        return node

    @property
    def shape(self) -> tuple[int, int]:
        return self.node.shape

    def __matmul__(self, other: "RiotMatrix") -> "RiotMatrix":
        return RiotMatrix(self.session,
                          MatMul(self.node, _scalarize(other)))

    @property
    def T(self) -> "RiotMatrix":
        """Deferred (lazy) transpose — a DAG node, never a disk pass.

        A transpose that feeds a product is absorbed into the
        multiply's operand flags by the rewriter; only a ``force()``
        of a bare transpose materializes anything.
        """
        return RiotMatrix(self.session, Transpose(self.node))

    def crossprod(self, other=None) -> "RiotMatrix":
        """``t(self) %*% other`` without materializing the transpose.

        With no argument the product is ``t(self) %*% self``: the
        symmetric :class:`Crossprod` node, whose kernel computes only
        the upper-triangular output blocks and mirrors them on write.
        """
        if other is None:
            return RiotMatrix(self.session, Crossprod(self.node))
        return RiotMatrix(self.session, MatMul(
            self.node, _scalarize(other), trans_a=True))

    def tcrossprod(self, other=None) -> "RiotMatrix":
        """``self %*% t(other)`` (``other`` defaults to self),
        transpose-free like :meth:`crossprod`."""
        if other is None:
            return RiotMatrix(self.session,
                              Crossprod(self.node, t_first=False))
        return RiotMatrix(self.session, MatMul(
            self.node, _scalarize(other), trans_b=True))

    def inv(self) -> "RiotMatrix":
        """Deferred explicit inverse.

        ``a.inv() @ b`` never materializes the inverse: the rewriter
        turns it into ``solve(a, b)`` before evaluation.
        """
        return RiotMatrix(self.session, Inverse(self.node))

    def solve(self, b):
        """Deferred solution of ``self @ x == b`` (vector or matrix b)."""
        node = Solve(self.node, _scalarize(b))
        return self._wrap(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RiotMatrix(shape={self.shape}, deferred)"


def _is_logical(node: Node) -> bool:
    """Heuristic: does this node produce 0/1 logical values?"""
    from .expr import COMPARISON_OPS
    if isinstance(node, Map) and node.op in COMPARISON_OPS:
        return True
    if isinstance(node, Map) and node.op == "ifelse":
        return all(_is_logical(c) for c in node.children[1:])
    return False
