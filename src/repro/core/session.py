"""RiotSession: the public entry point to next-generation RIOT.

A session owns the tile store (with its memory-capped buffer pool), the
rewriter, the evaluator, and a cache of materialized results for named
objects (§5's materialization policy: deferred evaluation needs selective
materialization "otherwise RIOT may have to repeat the same computation
across multiple complex expression DAGs").
"""

from __future__ import annotations

import numpy as np

from repro.storage import ArrayStore, DEFAULT_BLOCK_SIZE, IOStats

from .arrays import RiotMatrix, RiotVector
from .evaluator import Evaluator
from .expr import ArrayInput, Crossprod, Inverse, MatMul, Node, Range, \
    Solve
from .rewrite import Rewriter


class RiotSession:
    """Deferred, I/O-efficient array computing over a memory-capped store."""

    def __init__(self, memory_bytes: int = 64 * 1024 * 1024,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 optimize: bool = True,
                 policy: str = "lru") -> None:
        self.store = ArrayStore(memory_bytes=memory_bytes,
                                block_size=block_size, policy=policy)
        cost_env = {"memory_scalars": memory_bytes // 8,
                    "block_scalars": block_size // 8}
        self.rewriter = Rewriter(**cost_env) if optimize else Rewriter(
            enable_pushdown=False, enable_chain_reorder=False,
            enable_cse=False, enable_fold=False,
            enable_kernel_select=False, enable_solve_rewrite=False,
            enable_transpose_rewrite=False,
            **cost_env)
        self.optimize_enabled = optimize
        self.evaluator = Evaluator(
            self.store,
            memory_scalars=memory_bytes // 8,
            fuse_epilogues=optimize)
        # id -> (node, result).  The node rides along to pin its id:
        # a dict keyed on id() alone would hand a *new* DAG node that
        # recycled a collected node's address someone else's result.
        self._materialized: dict[int, tuple[Node, object]] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def vector(self, data, name: str | None = None) -> RiotVector:
        """Store a vector and return its deferred handle."""
        stored = self.store.vector_from_numpy(
            np.asarray(data, dtype=np.float64), name=name)
        return RiotVector(self, ArrayInput(stored, name=stored.name))

    def matrix(self, data, layout: str = "square",
               linearization: str = "row",
               name: str | None = None) -> RiotMatrix:
        stored = self.store.matrix_from_numpy(
            np.asarray(data, dtype=np.float64), layout=layout,
            linearization=linearization, name=name)
        return RiotMatrix(self, ArrayInput(stored, name=stored.name))

    def sparse_matrix(self, rows, cols, values, shape: tuple[int, int],
                      name: str | None = None) -> RiotMatrix:
        """Store 0-based COO triplets as CSR tiles; deferred handle.

        The handle's DAG node carries the exact density, so the
        rewriter's chain ordering and kernel selection see it.
        """
        from repro.sparse import SparseTiledMatrix
        stored = SparseTiledMatrix.from_coo(self.store, rows, cols,
                                            values, shape, name=name)
        return RiotMatrix(self, ArrayInput(stored, name=stored.name))

    def random_sparse_matrix(self, rows: int, cols: int, density: float,
                             seed: int = 0) -> RiotMatrix:
        """Uniformly sparse random matrix (standard-normal values)."""
        rng = np.random.default_rng(seed)
        nnz = int(round(density * rows * cols))
        flat = rng.choice(rows * cols, size=nnz, replace=False)
        return self.sparse_matrix(flat // cols, flat % cols,
                                  rng.standard_normal(nnz),
                                  (rows, cols))

    def arange(self, lo: int, hi: int) -> RiotVector:
        """The lazy range ``lo:hi`` (generated, never stored)."""
        return RiotVector(self, Range(lo, hi))

    def zeros(self, n: int) -> RiotVector:
        return self.vector(np.zeros(n))

    def random_vector(self, n: int, seed: int = 0) -> RiotVector:
        rng = np.random.default_rng(seed)
        return self.vector(rng.standard_normal(n))

    def random_matrix(self, rows: int, cols: int, seed: int = 0,
                      layout: str = "square") -> RiotMatrix:
        rng = np.random.default_rng(seed)
        return self.matrix(rng.standard_normal((rows, cols)),
                           layout=layout)

    # ------------------------------------------------------------------
    # Linear systems
    # ------------------------------------------------------------------
    def solve(self, a: RiotMatrix, b=None):
        """R's ``solve()``: ``solve(a, b)`` defers ``A x = b``;
        ``solve(a)`` defers the explicit inverse.

        Both are DAG nodes, so the rewriter sees them: a deferred
        ``session.solve(a) @ b`` plan is rewritten back into a single
        Solve before anything is materialized.
        """
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Inverse(a_node))
        b_node = b.node if hasattr(b, "node") else b
        node = Solve(a_node, b_node)
        wrapper = RiotVector if node.ndim == 1 else RiotMatrix
        return wrapper(self, node)

    def crossprod(self, a: RiotMatrix, b=None) -> RiotMatrix:
        """R's ``crossprod``: ``t(a) %*% b`` without materializing the
        transpose; ``crossprod(a)`` defers the symmetric
        :class:`Crossprod` node (half the reads and FLOPs)."""
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Crossprod(a_node))
        b_node = b.node if hasattr(b, "node") else b
        return RiotMatrix(self, MatMul(a_node, b_node, trans_a=True))

    def tcrossprod(self, a: RiotMatrix, b=None) -> RiotMatrix:
        """R's ``tcrossprod``: ``a %*% t(b)``, transpose-free."""
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Crossprod(a_node, t_first=False))
        b_node = b.node if hasattr(b, "node") else b
        return RiotMatrix(self, MatMul(a_node, b_node, trans_b=True))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def optimize(self, node: Node) -> Node:
        return self.rewriter.optimize(node)

    def force(self, obj):
        """Evaluate a handle's DAG; returns the stored array or scalar.

        Results for the exact DAG node are cached, so forcing a named
        object twice does not repeat its computation (the materialization
        policy of §5's Discussion).
        """
        node = obj.node if hasattr(obj, "node") else obj
        cached = self._materialized.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        optimized = self.optimize(node)
        memo: dict[int, object] = {}
        result = self.evaluator.force(optimized, memo)
        self._materialized[id(node)] = (node, result)
        return result

    def values(self, obj) -> np.ndarray | float:
        """Force and pull the result into memory as numpy data."""
        result = self.force(obj)
        if hasattr(result, "to_numpy"):
            return result.to_numpy()
        return result

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.store.device.stats

    def reset_stats(self) -> None:
        self.store.reset_stats()

    def explain(self, obj) -> str:
        """Render the DAG before and after optimization (Figure 2 view)."""
        from .expr import render
        node = obj.node if hasattr(obj, "node") else obj
        optimized = self.optimize(node)
        return ("-- original --\n" + render(node)
                + "\n-- optimized --\n" + render(optimized))
