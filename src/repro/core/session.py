"""RiotSession: the public entry point to next-generation RIOT.

A session owns the tile store (with its memory-capped buffer pool), the
two-stage optimizer (logical pass pipeline + cost-based physical
planner), the evaluator, and a cache of materialized results for named
objects (§5's materialization policy: deferred evaluation needs selective
materialization "otherwise RIOT may have to repeat the same computation
across multiple complex expression DAGs").

``force()`` runs the pipeline, lowers the logical DAG to a
:class:`~repro.core.plan.PhysicalPlan` and executes it; at optimizer
level 0 the evaluator's expression-tree dispatch runs the DAG as
written instead (the un-optimized fallback every ablation benchmark
measures against).  ``explain()`` renders the chosen plan with each
operator's predicted block I/O — and, once forced, the measured blocks
next to it.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.obs import CalibrationReport, MetricsRegistry
from repro.storage import ArrayStore, IOStats, StorageConfig

from .arrays import RiotMatrix, RiotVector
from .config import OptimizerConfig
from .evaluator import Evaluator
from .expr import ArrayInput, Crossprod, Inverse, MatMul, Node, Range, \
    Solve
from .passes import PassContext, build_pipeline
from .plan import PhysicalPlan
from .planner import Planner
from .rewrite import Rewriter

_UNSET = object()


class RiotSession:
    """Deferred, I/O-efficient array computing over a memory-capped store.

    The storage contract — backend (in-memory simulator, ``mmap`` page
    file, or ``pread`` page file), page-file path, buffer-pool budget,
    block size, replacement policy, durability — is injected as one
    :class:`~repro.storage.StorageConfig`::

        RiotSession(storage=StorageConfig(backend="mmap",
                                          path="/tmp/riot.db",
                                          memory_bytes=64 << 20))

    or through the URL convenience ``repro.open_session(...)``.  The
    pre-PR-6 keyword soup (``memory_bytes``/``block_size``/``policy``)
    still works but is deprecated.  Sessions on a file backend should
    be closed (or used as a context manager) so dirty frames reach the
    page file and temporary files are removed.
    """

    def __init__(self, memory_bytes=_UNSET, block_size=_UNSET,
                 optimize: bool = True,
                 policy=_UNSET,
                 config: OptimizerConfig | None = None,
                 storage: StorageConfig | None = None) -> None:
        legacy = {name: value for name, value in (
            ("memory_bytes", memory_bytes), ("block_size", block_size),
            ("policy", policy)) if value is not _UNSET}
        if legacy:
            if storage is not None:
                raise TypeError(
                    "pass storage=StorageConfig(...) or the legacy "
                    f"keyword(s) {sorted(legacy)}, not both")
            warnings.warn(
                f"RiotSession({', '.join(sorted(legacy))}) is "
                "deprecated: pass storage=StorageConfig(...) or use "
                "repro.open_session(url, memory=...)",
                DeprecationWarning, stacklevel=2)
            storage = StorageConfig(**legacy)
        elif storage is None:
            storage = StorageConfig()
        self.storage = storage
        self.store = ArrayStore(storage=storage)
        self.config = config if config is not None else \
            OptimizerConfig(level=2 if optimize else 0)
        self.optimize_enabled = self.config.level > 0
        # Budgets in *stored scalars*: a float32 store fits twice as
        # many per block, and every cost model counts blocks.
        self._memory_scalars = storage.memory_bytes // storage.itemsize
        self._block_scalars = storage.block_size // storage.itemsize
        # Legacy facade for session.optimize(); force() goes through
        # the pass pipeline + planner instead.
        self.rewriter = Rewriter._from_config(
            self.config, memory_scalars=self._memory_scalars,
            block_scalars=self._block_scalars)
        self.pipeline = build_pipeline(self.config)
        self.planner = Planner(self.config,
                               memory_scalars=self._memory_scalars,
                               block_scalars=self._block_scalars,
                               io_ratio=self.store.io_ratio_estimate())
        self.evaluator = Evaluator(
            self.store,
            memory_scalars=self._memory_scalars,
            fuse_epilogues=self.config.fusion_enabled,
            strict=self.config.strict,
            parallelism=self.config.parallelism)
        # Observability: the store's tracer plus a registry of live
        # counter sources, all exported by session.metrics.snapshot().
        # Sources are lambdas so they track the *current* stats objects
        # across reset_stats() / device swaps.
        self.metrics = MetricsRegistry()
        self.metrics.register_source(
            "io", lambda: self.store.device.stats.as_dict())
        self.metrics.register_source(
            "pool", lambda: self.store.pool.stats.as_dict())
        self.metrics.register_source(
            "scheduler",
            lambda: self.store.pool.scheduler.stats.as_dict())
        self.metrics.register_source("tracer", self._tracer_health)
        # id -> (node, result).  The node rides along to pin its id:
        # a dict keyed on id() alone would hand a *new* DAG node that
        # recycled a collected node's address someone else's result.
        self._materialized: dict[int, tuple[Node, object]] = {}
        # id -> (node, plan): explain() and force() share one plan per
        # root, so measured I/O lands on the object explain() renders.
        self._plans: dict[int, tuple[Node, PhysicalPlan]] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def vector(self, data, name: str | None = None) -> RiotVector:
        """Store a vector and return its deferred handle."""
        stored = self.store.vector_from_numpy(
            np.asarray(data, dtype=np.float64), name=name)
        return RiotVector(self, ArrayInput(stored, name=stored.name))

    def matrix(self, data, layout: str = "square",
               linearization: str = "row",
               name: str | None = None) -> RiotMatrix:
        stored = self.store.matrix_from_numpy(
            np.asarray(data, dtype=self.store.dtype), layout=layout,
            linearization=linearization, name=name)
        return RiotMatrix(self, ArrayInput(stored, name=stored.name))

    def sparse_matrix(self, rows, cols, values, shape: tuple[int, int],
                      name: str | None = None) -> RiotMatrix:
        """Store 0-based COO triplets as CSR tiles; deferred handle.

        The handle's DAG node carries the exact density, so the
        rewriter's chain ordering and kernel selection see it.
        """
        from repro.sparse import SparseTiledMatrix
        stored = SparseTiledMatrix.from_coo(self.store, rows, cols,
                                            values, shape, name=name)
        return RiotMatrix(self, ArrayInput(stored, name=stored.name))

    def random_sparse_matrix(self, rows: int, cols: int, density: float,
                             seed: int = 0) -> RiotMatrix:
        """Uniformly sparse random matrix (standard-normal values)."""
        rng = np.random.default_rng(seed)
        nnz = int(round(density * rows * cols))
        flat = rng.choice(rows * cols, size=nnz, replace=False)
        return self.sparse_matrix(flat // cols, flat % cols,
                                  rng.standard_normal(nnz),
                                  (rows, cols))

    def arange(self, lo: int, hi: int) -> RiotVector:
        """The lazy range ``lo:hi`` (generated, never stored)."""
        return RiotVector(self, Range(lo, hi))

    def zeros(self, n: int) -> RiotVector:
        return self.vector(np.zeros(n))

    def random_vector(self, n: int, seed: int = 0) -> RiotVector:
        rng = np.random.default_rng(seed)
        return self.vector(rng.standard_normal(n))

    def random_matrix(self, rows: int, cols: int, seed: int = 0,
                      layout: str = "square") -> RiotMatrix:
        rng = np.random.default_rng(seed)
        return self.matrix(rng.standard_normal((rows, cols)),
                           layout=layout)

    # ------------------------------------------------------------------
    # Linear systems
    # ------------------------------------------------------------------
    def solve(self, a: RiotMatrix, b=None):
        """R's ``solve()``: ``solve(a, b)`` defers ``A x = b``;
        ``solve(a)`` defers the explicit inverse.

        Both are DAG nodes, so the rewriter sees them: a deferred
        ``session.solve(a) @ b`` plan is rewritten back into a single
        Solve before anything is materialized.
        """
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Inverse(a_node))
        b_node = b.node if hasattr(b, "node") else b
        node = Solve(a_node, b_node)
        wrapper = RiotVector if node.ndim == 1 else RiotMatrix
        return wrapper(self, node)

    def crossprod(self, a: RiotMatrix, b=None) -> RiotMatrix:
        """R's ``crossprod``: ``t(a) %*% b`` without materializing the
        transpose; ``crossprod(a)`` defers the symmetric
        :class:`Crossprod` node (half the reads and FLOPs)."""
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Crossprod(a_node))
        b_node = b.node if hasattr(b, "node") else b
        return RiotMatrix(self, MatMul(a_node, b_node, trans_a=True))

    def tcrossprod(self, a: RiotMatrix, b=None) -> RiotMatrix:
        """R's ``tcrossprod``: ``a %*% t(b)``, transpose-free."""
        a_node = a.node if hasattr(a, "node") else a
        if b is None:
            return RiotMatrix(self, Crossprod(a_node, t_first=False))
        b_node = b.node if hasattr(b, "node") else b
        return RiotMatrix(self, MatMul(a_node, b_node, trans_b=True))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def optimize(self, node: Node) -> Node:
        """Legacy logical rewrite (deprecated Rewriter view).

        Chain order and kernel hints show up on the returned DAG, as
        the old monolithic rewriter produced them.  ``force()`` no
        longer consumes this: it runs the pass pipeline and makes the
        physical choices in the cost-based planner — use ``plan()`` /
        ``explain()`` to see those.
        """
        return self.rewriter.optimize(node)

    def plan(self, obj) -> PhysicalPlan:
        """The physical plan ``force()`` will (or did) execute.

        Plans are cached per root node, so calling ``explain`` before
        and after a ``force`` shows the same operator tree — first
        with predictions only, then with measured blocks next to them.
        """
        node = obj.node if hasattr(obj, "node") else obj
        cached = self._plans.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        ctx = PassContext(memory_scalars=self._memory_scalars,
                          block_scalars=self._block_scalars,
                          tracer=self.tracer)
        logical = self.pipeline.run(node, ctx)
        with self.tracer.span("planner", cat="optimizer"):
            plan = self.planner.plan(logical)
        self._plans[id(node)] = (node, plan)
        return plan

    def force(self, obj):
        """Evaluate a handle's DAG; returns the stored array or scalar.

        Results for the exact DAG node are cached, so forcing a named
        object twice does not repeat its computation (the materialization
        policy of §5's Discussion).
        """
        node = obj.node if hasattr(obj, "node") else obj
        cached = self._materialized.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        if self.config.plans:
            result = self.evaluator.execute(self.plan(node))
        else:
            result = self.evaluator.force(node, {})
        self._materialized[id(node)] = (node, result)
        return result

    def values(self, obj) -> np.ndarray | float:
        """Force and pull the result into memory as numpy data."""
        result = self.force(obj)
        if hasattr(result, "to_numpy"):
            return result.to_numpy()
        return result

    # ------------------------------------------------------------------
    # Persistence & lifecycle
    # ------------------------------------------------------------------
    def open_vector(self, name: str) -> RiotVector:
        """Handle for a named vector already in the session's store —
        either created this session or persisted in the page file a
        file-backed session reopened."""
        stored = self.store.open_vector(name)
        return RiotVector(self, ArrayInput(stored, name=stored.name))

    def open_matrix(self, name: str) -> RiotMatrix:
        """Handle for a named matrix already in the session's store."""
        stored = self.store.open_matrix(name)
        return RiotMatrix(self, ArrayInput(stored, name=stored.name))

    def stored_names(self) -> list[str]:
        """Names of arrays reachable in the store (live + persisted)."""
        return self.store.stored_names()

    def close(self) -> None:
        """Flush dirty frames and release the backing device.

        On a file backend with an explicit path this persists the
        array manifest for a later ``open_session``; unnamed temporary
        page files are deleted.  Idempotent.
        """
        self.evaluator.shutdown()
        self.store.close()

    def __enter__(self) -> "RiotSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.store.device.stats

    @property
    def tracer(self):
        """The store's span tracer (off by default; see repro.obs)."""
        return self.store.tracer

    def _tracer_health(self) -> dict:
        t = self.tracer
        return {"enabled": t.enabled, "spans": len(t),
                "spans_opened": t.spans_opened,
                "spans_dropped": t.spans_dropped}

    def reset_stats(self) -> None:
        self.store.reset_stats()

    def explain(self, obj, analyze: bool = False) -> str:
        """Render the optimizer's view of a DAG (Figure 2, upgraded).

        Three sections: the DAG as written, the logically rewritten
        DAG, and — at optimizer level >= 1 — the chosen physical plan
        with per-operator predicted block I/O (plus measured blocks
        once the handle has been forced) and the enumerated
        alternatives each choice beat.

        ``analyze=True`` executes the plan under the tracer first
        (EXPLAIN ANALYZE): every operator then also shows its measured
        I/O delta (blocks, bytes, syscalls, device time), buffer-pool
        behavior, wall-clock, and the measured/predicted ratio —
        flagged when it leaves the validated 0.5–2.0x band — followed
        by a per-cost-model calibration summary.  With
        ``OptimizerConfig(parallelism=N)`` (N > 1) the plan is run
        twice — once on the worker pool to capture the parallel
        schedule, once serially for the exact per-op measurements and
        the baseline wall time — and a schedule section (per-op worker
        assignment, critical path vs sum of op time, measured speedup)
        is appended.
        """
        from .expr import render
        node = obj.node if hasattr(obj, "node") else obj
        if not self.config.plans:
            text = ("-- original --\n" + render(node)
                    + "\n-- optimized --\n" + render(node)
                    + "\n-- physical plan --\n"
                    + "(optimizer level 0: expression-tree dispatch, "
                    "no plan)")
            if analyze:
                text += ("\n(analyze requires optimizer level >= 1: "
                         "there is no plan to measure)")
            return text
        if analyze:
            # Plan inside the recording window too, so the trace shows
            # the optimizer passes next to the execution spans (a
            # cached plan contributes no optimizer spans — it did not
            # run again).
            with self.tracer.recording():
                plan = self.plan(node)
                if self.evaluator.parallelism > 1:
                    # Parallel run first: captures the schedule
                    # (worker assignments, per-op start/end).  The
                    # serial run below neither clears it nor records
                    # one of its own.
                    self.evaluator.execute_parallel(plan, cold=True)
                # Serial cold run: exact exclusive per-op deltas, and
                # — with tile parallelism off too — an honest
                # workers=1 baseline for the schedule's speedup line.
                t0 = time.perf_counter_ns()
                with self.evaluator.serial_kernels():
                    self.evaluator.execute(plan, cold=True)
                if plan.parallel_schedule is not None:
                    plan.parallel_schedule["baseline_wall_ns"] = \
                        time.perf_counter_ns() - t0
        else:
            plan = self.plan(node)
            if self.config.strict:
                # The analyze path verifies inside execute(); verify
                # the render-only path too so strict explain() rejects
                # an infeasible plan instead of printing it.
                from repro.analysis.planlint import verify_plan
                verify_plan(plan, self.storage)
        text = ("-- original --\n" + render(node)
                + "\n-- optimized --\n" + render(plan.logical_root)
                + f"\n-- physical plan (level {plan.level}) --\n"
                + plan.render(analyze=analyze))
        if analyze:
            text += "\n" + self._render_analyze_summary(plan)
            if plan.parallel_schedule is not None:
                text += "\n" + plan.render_schedule()
        return text

    def _render_analyze_summary(self, plan: PhysicalPlan) -> str:
        """The trailing EXPLAIN ANALYZE section: session-level totals
        plus the per-cost-model calibration verdicts."""
        # Per-op measurements are exclusive of children (the evaluator
        # snapshots after the children ran), so summing them yields the
        # run's exact totals.
        io = IOStats()
        pool_hits = pool_misses = 0
        wall_ns = 0
        for op in plan.ops():
            if op.measured is not None:
                io = io.merged(op.measured)
            if op.pool_measured is not None:
                pool_hits += op.pool_measured.hits
                pool_misses += op.pool_measured.misses
            wall_ns += op.wall_ns or 0
        lines = [f"-- analyze (backend={self.storage.backend}) --",
                 f"execution: {io.reads} blk read, {io.writes} blk "
                 f"written, {io.syscalls} syscalls, "
                 f"{io.seconds:.6f} s device, "
                 f"{wall_ns / 1e9:.6f} s wall",
                 f"pool: {pool_hits} hits / {pool_misses} misses"]
        report = CalibrationReport()
        report.add_plan(plan)
        for name in sorted(report.models):
            entry = report.models[name]
            med = entry.median_ratio
            if med is None:
                verdict = (f"no band-checkable samples "
                           f"({entry.n_skipped} below noise floor)")
            else:
                ok = entry.in_band(report.band)
                verdict = (f"median ratio {med:.3f} over "
                           f"{len(entry.ratios)} op(s) "
                           + ("ok" if ok else
                              f"!! outside [{report.band[0]}, "
                              f"{report.band[1]}]"))
            lines.append(f"calibration: {name}: {verdict}")
        return "\n".join(lines)

    def calibration_report(self, obj=None) -> CalibrationReport:
        """Machine-readable cost-model drift report.

        With ``obj``, covers that handle's (executed) plan; without,
        aggregates every plan this session has executed.  Run
        ``explain(obj, analyze=True)`` or ``force(obj)`` first so
        there are measurements to aggregate.
        """
        report = CalibrationReport()
        if obj is not None:
            node = obj.node if hasattr(obj, "node") else obj
            plan = self.plan(node)
            if plan.executed:
                report.add_plan(plan)
            return report
        for _node, plan in self._plans.values():
            if plan.executed:
                report.add_plan(plan)
        return report
