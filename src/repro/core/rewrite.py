"""Database-style rewrite rules over expression DAGs (§5, Figure 2).

The optimizer applies transformation rules until fixpoint:

1. **Subscript pushdown through elementwise maps** — ``f(x, y)[s]``
   becomes ``f(x[s], y[s])``: only the selected elements are ever computed.
2. **Subscript pushdown through deferred modification** — the Figure-2
   headline: ``(b with b[mask] <- v)[s]`` becomes
   ``ifelse(mask[s], v, b[s])``, so "modifications to b (as well as tests of
   whether an element of b should be modified) only need to be executed on
   10 elements".
3. **Subscript of a range** is index arithmetic, no data access at all.
4. **Subscript composition** — ``x[i][j]`` becomes ``x[i[j]]``.
5. **Constant folding** over scalar subtrees.
6. **Common-subexpression elimination** by structural hashing (the two
   ``sqrt`` terms of Example 1 share their ``x`` and ``y`` scans).
7. **Matrix-chain reordering** — chains of ``%*%`` are re-parenthesized by
   the dynamic program of Appendix B (see :mod:`repro.core.chain`).
"""

from __future__ import annotations


from . import chain as chain_mod
from .expr import (ArrayInput, BINARY_OPS, Map, MatMul, Node, Range, Reduce,
                   Scalar, Subscript, SubscriptAssign, UNARY_OPS,
                   walk)


class Rewriter:
    """Applies rewrite rules bottom-up until fixpoint."""

    def __init__(self, enable_pushdown: bool = True,
                 enable_chain_reorder: bool = True,
                 enable_cse: bool = True,
                 enable_fold: bool = True,
                 max_passes: int = 10) -> None:
        self.enable_pushdown = enable_pushdown
        self.enable_chain_reorder = enable_chain_reorder
        self.enable_cse = enable_cse
        self.enable_fold = enable_fold
        self.max_passes = max_passes
        self.applied: list[str] = []

    # ------------------------------------------------------------------
    def optimize(self, root: Node) -> Node:
        """Rewrite ``root`` and return the optimized DAG."""
        self.applied = []
        node = root
        for _ in range(self.max_passes):
            before = self._signature(node)
            node = self._rewrite(node, {})
            if self.enable_cse:
                node = self._cse(node)
            if self._signature(node) == before:
                break
        return node

    @staticmethod
    def _signature(node: Node) -> tuple:
        sig = []
        ids: dict[int, int] = {}
        for n in walk(node):
            ids[id(n)] = len(ids)
            sig.append((type(n).__name__, getattr(n, "op", None),
                        tuple(ids[id(c)] for c in n.children)))
        return tuple(sig)

    # ------------------------------------------------------------------
    def _rewrite(self, node: Node, memo: dict[int, Node]) -> Node:
        if id(node) in memo:
            return memo[id(node)]
        children = tuple(self._rewrite(c, memo) for c in node.children)
        if children != node.children:
            node = node.with_children(children)
        node = self._apply_rules(node)
        memo[id(node)] = node
        return node

    def _apply_rules(self, node: Node) -> Node:
        if self.enable_fold:
            folded = self._fold_constants(node)
            if folded is not node:
                self.applied.append("constant-fold")
                return folded
        if self.enable_pushdown and isinstance(node, Subscript):
            pushed = self._push_subscript(node)
            if pushed is not node:
                return self._apply_rules(pushed)
        if self.enable_chain_reorder and isinstance(node, MatMul):
            reordered = self._reorder_chain(node)
            if reordered is not node:
                return reordered
        return node

    # -- rule: constant folding -----------------------------------------
    def _fold_constants(self, node: Node) -> Node:
        if isinstance(node, Map) and all(
                isinstance(c, Scalar) for c in node.children):
            from .expr import TERNARY_OPS
            fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
            value = fns[node.op](*(c.value for c in node.children))
            return Scalar(float(value))
        return node

    # -- rule: subscript pushdown -----------------------------------------
    def _push_subscript(self, node: Subscript) -> Node:
        src, index = node.src, node.index
        if isinstance(src, Map):
            self.applied.append(f"pushdown-map:{src.op}")
            new_children = []
            for c in src.children:
                if c.shape == ():
                    new_children.append(c)
                else:
                    new_children.append(Subscript(c, index))
            return Map(src.op, *new_children)
        if isinstance(src, SubscriptAssign) and src.logical_mask:
            # Figure 2(a) -> 2(b): selection pushed through []<-.
            self.applied.append("pushdown-assign")
            mask_sel = Subscript(src.index, index)
            base_sel = Subscript(src.base, index)
            value = src.value
            if value.shape != ():
                value = Subscript(value, index)
            return Map("ifelse", mask_sel, value, base_sel)
        if isinstance(src, Range):
            self.applied.append("pushdown-range")
            if src.lo == 1:
                return index
            return Map("+", index, Scalar(src.lo - 1))
        if isinstance(src, Subscript):
            self.applied.append("pushdown-compose")
            return Subscript(src.src, Subscript(src.index, index))
        return node

    # -- rule: matrix chain reordering ---------------------------------------
    def _collect_chain(self, node: Node, factors: list[Node]) -> None:
        if isinstance(node, MatMul):
            self._collect_chain(node.children[0], factors)
            self._collect_chain(node.children[1], factors)
        else:
            factors.append(node)

    def _reorder_chain(self, node: MatMul) -> Node:
        factors: list[Node] = []
        self._collect_chain(node, factors)
        if len(factors) < 3:
            return node
        dims = [factors[0].shape[0]] + [f.shape[1] for f in factors]
        order = chain_mod.optimal_order(dims)
        current = self._signature_order(node, factors)
        if order == current:
            return node
        self.applied.append("chain-reorder")
        return self._build_order(factors, order)

    def _signature_order(self, node: Node, factors: list[Node]):
        index_of = {id(f): i for i, f in enumerate(factors)}

        def build(n: Node):
            if isinstance(n, MatMul) and id(n) not in index_of:
                return (build(n.children[0]), build(n.children[1]))
            return index_of[id(n)]
        return build(node)

    def _build_order(self, factors: list[Node], order) -> Node:
        if isinstance(order, int):
            return factors[order]
        left = self._build_order(factors, order[0])
        right = self._build_order(factors, order[1])
        return MatMul(left, right)

    # -- rule: common subexpression elimination -----------------------------
    def _cse(self, root: Node) -> Node:
        canon: dict[tuple, Node] = {}
        mapping: dict[int, Node] = {}

        def visit(node: Node) -> Node:
            if id(node) in mapping:
                return mapping[id(node)]
            children = tuple(visit(c) for c in node.children)
            if children != node.children:
                node2 = node.with_children(children)
            else:
                node2 = node
            key = self._canon_key(node2)
            if key in canon:
                result = canon[key]
                if result is not node2:
                    self.applied.append("cse")
            else:
                canon[key] = node2
                result = node2
            mapping[id(node)] = result
            return result

        return visit(root)

    @staticmethod
    def _canon_key(node: Node) -> tuple:
        base: tuple
        if isinstance(node, ArrayInput):
            base = ("ArrayInput", id(node.data))
        elif isinstance(node, Scalar):
            base = ("Scalar", node.value)
        elif isinstance(node, Range):
            base = ("Range", node.lo, node.hi)
        elif isinstance(node, Map):
            base = ("Map", node.op)
        elif isinstance(node, Reduce):
            base = ("Reduce", node.op)
        elif isinstance(node, SubscriptAssign):
            base = ("SubscriptAssign", node.logical_mask)
        else:
            base = (type(node).__name__,)
        return base + tuple(id(c) for c in node.children)


def optimize(root: Node, **kwargs) -> Node:
    """One-shot convenience: rewrite a DAG with default settings."""
    return Rewriter(**kwargs).optimize(root)
