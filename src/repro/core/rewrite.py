"""Database-style rewrite rules over expression DAGs (§5, Figure 2).

The optimizer applies transformation rules until fixpoint:

1. **Subscript pushdown through elementwise maps** — ``f(x, y)[s]``
   becomes ``f(x[s], y[s])``: only the selected elements are ever computed.
2. **Subscript pushdown through deferred modification** — the Figure-2
   headline: ``(b with b[mask] <- v)[s]`` becomes
   ``ifelse(mask[s], v, b[s])``, so "modifications to b (as well as tests of
   whether an element of b should be modified) only need to be executed on
   10 elements".
3. **Subscript of a range** is index arithmetic, no data access at all.
4. **Subscript composition** — ``x[i][j]`` becomes ``x[i[j]]``.
5. **Constant folding** over scalar subtrees.
6. **Common-subexpression elimination** by structural hashing (the two
   ``sqrt`` terms of Example 1 share their ``x`` and ``y`` scans).
7. **Matrix-chain reordering** — chains of ``%*%`` are re-parenthesized by
   the dynamic program of Appendix B (see :mod:`repro.core.chain`).  When
   any factor carries an estimated density below 1, the nnz-weighted DP
   (:func:`repro.core.chain.optimal_order_sparse`) replaces the dense
   flop count, so e.g. a sparse-sparse-vector chain collapses the cheap
   sparse product first.
8. **Sparse/dense kernel selection** — every ``%*%`` with a sparse-
   estimated operand is annotated with the cheaper execution kernel by
   comparing the nnz-parameterized ``spmm_io`` model against the dense
   Appendix-A ``square_tile_matmul_io`` model.
9. **Inverse elimination** — ``inv(A) %*% B`` becomes ``solve(A, B)``:
   one pivoted factorization plus substitution instead of materializing
   the n x n inverse and multiplying through it.
10. **Transpose elimination** — transposes become *operand flags*, not
    disk passes: ``t(t(A)) -> A``; ``t(A %*% B) -> MatMul(B, A, flags)``
    (pushed through the product instead of materializing it);
    ``t(A) %*% B -> MatMul(A, B, trans_a=True)`` (the flag reads A in
    stored layout, transposing tiles in memory); and the symmetric
    patterns ``t(A) %*% A`` / ``A %*% t(A)`` become :class:`Crossprod`,
    whose kernel computes only the upper-triangular output blocks.
"""

from __future__ import annotations


from . import chain as chain_mod
from .costs import spgemm_io, spmm_io, square_tile_matmul_io
from .expr import (ArrayInput, BINARY_OPS, Crossprod, Inverse, Map,
                   MatMul, Node, Range, Reduce, Scalar, Solve, Subscript,
                   SubscriptAssign, Transpose, UNARY_OPS, walk)

#: Densities at or above this are treated as dense (estimates are fuzzy;
#: a 99.9%-full matrix gains nothing from CSR tiles).
DENSE_THRESHOLD = 0.999


class Rewriter:
    """Applies rewrite rules bottom-up until fixpoint.

    ``memory_scalars`` and ``block_scalars`` parameterize the I/O cost
    models used by chain reordering and kernel selection; sessions pass
    their own buffer-pool budget so plan choices match the store the
    plan will run on.
    """

    def __init__(self, enable_pushdown: bool = True,
                 enable_chain_reorder: bool = True,
                 enable_cse: bool = True,
                 enable_fold: bool = True,
                 enable_kernel_select: bool = True,
                 enable_solve_rewrite: bool = True,
                 enable_transpose_rewrite: bool = True,
                 max_passes: int = 10,
                 memory_scalars: int = 8 * 1024 * 1024,
                 block_scalars: int = 1024) -> None:
        self.enable_pushdown = enable_pushdown
        self.enable_chain_reorder = enable_chain_reorder
        self.enable_cse = enable_cse
        self.enable_fold = enable_fold
        self.enable_kernel_select = enable_kernel_select
        self.enable_solve_rewrite = enable_solve_rewrite
        self.enable_transpose_rewrite = enable_transpose_rewrite
        self.max_passes = max_passes
        self.memory_scalars = memory_scalars
        self.block_scalars = block_scalars
        self.applied: list[str] = []

    # ------------------------------------------------------------------
    def optimize(self, root: Node) -> Node:
        """Rewrite ``root`` and return the optimized DAG."""
        self.applied = []
        node = root
        for _ in range(self.max_passes):
            before = self._signature(node)
            node = self._rewrite(node, {})
            if self.enable_cse:
                node = self._cse(node)
            if self._signature(node) == before:
                break
        return node

    @staticmethod
    def _signature(node: Node) -> tuple:
        sig = []
        ids: dict[int, int] = {}
        for n in walk(node):
            ids[id(n)] = len(ids)
            sig.append((type(n).__name__, getattr(n, "op", None),
                        getattr(n, "kernel", None),
                        getattr(n, "trans_a", None),
                        getattr(n, "trans_b", None),
                        tuple(ids[id(c)] for c in n.children)))
        return tuple(sig)

    # ------------------------------------------------------------------
    def _rewrite(self, node: Node, memo: dict[int, Node]) -> Node:
        if id(node) in memo:
            return memo[id(node)]
        children = tuple(self._rewrite(c, memo) for c in node.children)
        if children != node.children:
            node = node.with_children(children)
        node = self._apply_rules(node)
        memo[id(node)] = node
        return node

    def _apply_rules(self, node: Node) -> Node:
        if self.enable_fold:
            folded = self._fold_constants(node)
            if folded is not node:
                self.applied.append("constant-fold")
                return folded
        if self.enable_pushdown and isinstance(node, Subscript):
            pushed = self._push_subscript(node)
            if pushed is not node:
                return self._apply_rules(pushed)
        if self.enable_solve_rewrite and isinstance(node, MatMul):
            solved = self._inv_to_solve(node)
            if solved is not node:
                return self._apply_rules(solved)
        if self.enable_transpose_rewrite and isinstance(node, Transpose):
            pushed = self._push_transpose(node)
            if pushed is not node:
                return self._apply_rules(pushed)
        if self.enable_chain_reorder and isinstance(node, MatMul):
            reordered = self._reorder_chain(node)
            if reordered is not node:
                return reordered
        if self.enable_transpose_rewrite and isinstance(node, MatMul):
            absorbed = self._absorb_transpose(node)
            if absorbed is not node:
                return self._apply_rules(absorbed)
        if self.enable_kernel_select and isinstance(node, MatMul):
            selected = self._select_kernel(node)
            if selected is not node:
                return selected
        return node

    # -- rule: constant folding -----------------------------------------
    def _fold_constants(self, node: Node) -> Node:
        if isinstance(node, Map) and all(
                isinstance(c, Scalar) for c in node.children):
            from .expr import TERNARY_OPS
            fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
            value = fns[node.op](*(c.value for c in node.children))
            return Scalar(float(value))
        return node

    # -- rule: subscript pushdown -----------------------------------------
    def _push_subscript(self, node: Subscript) -> Node:
        src, index = node.src, node.index
        if isinstance(src, Map):
            self.applied.append(f"pushdown-map:{src.op}")
            new_children = []
            for c in src.children:
                if c.shape == ():
                    new_children.append(c)
                else:
                    new_children.append(Subscript(c, index))
            return Map(src.op, *new_children)
        if isinstance(src, SubscriptAssign) and src.logical_mask:
            # Figure 2(a) -> 2(b): selection pushed through []<-.
            self.applied.append("pushdown-assign")
            mask_sel = Subscript(src.index, index)
            base_sel = Subscript(src.base, index)
            value = src.value
            if value.shape != ():
                value = Subscript(value, index)
            return Map("ifelse", mask_sel, value, base_sel)
        if isinstance(src, Range):
            self.applied.append("pushdown-range")
            if src.lo == 1:
                return index
            return Map("+", index, Scalar(src.lo - 1))
        if isinstance(src, Subscript):
            self.applied.append("pushdown-compose")
            return Subscript(src.src, Subscript(src.index, index))
        return node

    # -- rule: inv(A) %*% B  ->  solve(A, B) ---------------------------------
    def _inv_to_solve(self, node: MatMul) -> Node:
        """Replace a multiply by an explicit inverse with a Solve node.

        ``inv(A) %*% B`` and ``solve(A, B)`` are algebraically equal,
        but the solve plan factors A once and substitutes, while the
        inverse plan additionally materializes the n x n inverse and
        runs a full out-of-core multiply — strictly more I/O
        (:func:`repro.core.costs.inverse_io` vs ``lu_io + solve_io``).
        The classic array-algebra rewrite a SQL host cannot express.
        """
        a, b = node.children
        if isinstance(a, Inverse):
            self.applied.append("inv-to-solve")
            return Solve(a.children[0], b)
        return node

    # -- rule: transpose elimination ----------------------------------------
    def _push_transpose(self, node: Transpose) -> Node:
        """Eliminate a Transpose by algebra instead of a disk pass.

        ``t(t(A))`` cancels; ``t`` of a symmetric :class:`Crossprod`
        is the identity; ``t(A %*% B)`` swaps the operands and flips
        their flags (``(AB)^T = B^T A^T``), pushing the transpose into
        the product where it is free.  A transpose of a *stored* leaf
        (or of a sparse plan) is left alone — the evaluator's explicit
        materialization remains the fallback for forcing a bare ``t(A)``.
        """
        child = node.children[0]
        if isinstance(child, Transpose):
            self.applied.append("transpose-cancel")
            return child.children[0]
        if isinstance(child, Crossprod):
            self.applied.append("transpose-symmetric")
            return child
        if isinstance(child, MatMul) and child.kernel != "sparse":
            a, b = child.children
            if self._sparse_stored(a) or self._sparse_stored(b):
                return node
            self.applied.append("transpose-push-matmul")
            return MatMul(b, a, kernel=child.kernel,
                          trans_a=not child.trans_b,
                          trans_b=not child.trans_a)
        return node

    def _absorb_transpose(self, node: MatMul) -> Node:
        """Fold Transpose children into operand flags, then recognize
        the symmetric patterns.

        ``t(A) %*% B`` becomes ``MatMul(A, B, trans_a=True)`` — A's
        tiles are read in stored layout and transposed in memory, so
        the transposed copy never exists on disk.  When both operands
        are the *same* node and exactly one flag is set, the product is
        symmetric and becomes :class:`Crossprod`.  Sparse-stored
        operands keep their Transpose (the sparse kernels have no
        flagged variants; densify-then-transpose stays the fallback).
        """
        a, b = node.children
        ta, tb = node.trans_a, node.trans_b
        changed = False
        if isinstance(a, Transpose) and \
                not self._sparse_stored(a.children[0]):
            a, ta, changed = a.children[0], not ta, True
        if isinstance(b, Transpose) and \
                not self._sparse_stored(b.children[0]):
            b, tb, changed = b.children[0], not tb, True
        if changed:
            self.applied.append("transpose-absorb")
            return MatMul(a, b, kernel=node.kernel,
                          trans_a=ta, trans_b=tb)
        if a is b and ta != tb and not self._sparse_stored(a):
            self.applied.append("crossprod")
            return Crossprod(a, t_first=ta)
        return node

    # -- rule: matrix chain reordering ---------------------------------------
    def _collect_chain(self, node: Node, factors: list[Node]) -> None:
        # A flagged MatMul is opaque to reordering (its operands are
        # not chain factors of the outer product) — treat it as a leaf.
        if isinstance(node, MatMul) and not (node.trans_a or
                                             node.trans_b):
            self._collect_chain(node.children[0], factors)
            self._collect_chain(node.children[1], factors)
        else:
            factors.append(node)

    def _reorder_chain(self, node: MatMul) -> Node:
        if node.trans_a or node.trans_b:
            return node
        factors: list[Node] = []
        self._collect_chain(node, factors)
        if len(factors) < 3:
            return node
        dims = [factors[0].shape[0]] + [f.shape[1] for f in factors]
        densities = [f.density for f in factors]
        if min(densities) < DENSE_THRESHOLD:
            order = chain_mod.optimal_order_sparse(dims, densities)
            rule = "chain-reorder-sparse"
        else:
            order = chain_mod.optimal_order(dims)
            rule = "chain-reorder"
        current = self._signature_order(node, factors)
        if order == current:
            return node
        self.applied.append(rule)
        return self._build_order(factors, order)

    # -- rule: sparse/dense kernel selection -------------------------------
    def _sparse_stored(self, node: Node) -> bool:
        """Will forcing this node yield a *sparse-stored* matrix?

        Estimated density and storage format are different things: a
        SpMM result is dense-stored however sparse its values.  Sparse
        storage arises from a sparse ArrayInput or from a SpGEMM
        (sparse x sparse ``%*%`` not forced dense).  Kernel selection
        runs bottom-up, so child MatMuls are already annotated here.
        """
        if isinstance(node, ArrayInput):
            return hasattr(node.data, "tile_nnz")
        if isinstance(node, MatMul) and node.kernel != "dense":
            return (self._sparse_stored(node.children[0])
                    and self._sparse_stored(node.children[1]))
        return False

    def _sparse_tile_side(self, node: Node) -> int | None:
        """Tile side the forced sparse matrix will actually have.

        A SpGEMM result inherits its row-tile side from the left
        factor, so recursing left reaches the stored leaf.
        """
        if isinstance(node, ArrayInput):
            tile_shape = getattr(node.data, "tile_shape", None)
            return tile_shape[0] if tile_shape else None
        if isinstance(node, MatMul):
            return self._sparse_tile_side(node.children[0])
        return None

    def _select_kernel(self, node: MatMul) -> Node:
        """Annotate a ``%*%`` with the cost-model-cheaper kernel.

        Only fires when an operand will be sparse-stored: the matching
        nnz-parameterized model (``spgemm_io`` for sparse x sparse,
        ``spmm_io`` for sparse x dense, each fed the operands'
        estimated nnz) is compared against the dense Appendix-A model
        at this rewriter's memory/block setting, and the verdict is
        recorded on the node for the evaluator.
        """
        if node.kernel != "auto":
            return node
        if node.trans_a or node.trans_b:
            # Flags imply dense execution (tiles transposed in memory);
            # the sparse kernels have no flagged variants.
            return node
        a, b = node.children
        a_sp = self._sparse_stored(a)
        b_sp = self._sparse_stored(b)
        if not a_sp:
            # No dense x sparse kernel exists; the evaluator densifies
            # the right operand either way, so leave the node alone.
            return node
        m, k = a.shape
        n = b.shape[1]
        from .costs import DEFAULT_TILE_SIDE
        tile_side = self._sparse_tile_side(a) or DEFAULT_TILE_SIDE
        if b_sp:
            sparse_cost = spgemm_io(m, k, n, a.estimated_nnz,
                                    b.estimated_nnz, self.block_scalars,
                                    tile_side=tile_side)
        else:
            sparse_cost = spmm_io(m, k, n, a.estimated_nnz,
                                  self.memory_scalars,
                                  self.block_scalars,
                                  tile_side=tile_side)
        # The Appendix-A formula is asymptotic; at small sizes it drops
        # below the trivial floor of reading both operands and writing
        # the result once, so clamp it there before comparing.
        dense_cost = max(
            square_tile_matmul_io(m, k, n, self.memory_scalars,
                                  self.block_scalars),
            (m * k + k * n + m * n) / self.block_scalars)
        kernel = "sparse" if sparse_cost < dense_cost else "dense"
        self.applied.append(f"kernel-select:{kernel}")
        return MatMul(a, b, kernel=kernel)

    def _signature_order(self, node: Node, factors: list[Node]):
        index_of = {id(f): i for i, f in enumerate(factors)}

        def build(n: Node):
            if isinstance(n, MatMul) and id(n) not in index_of:
                return (build(n.children[0]), build(n.children[1]))
            return index_of[id(n)]
        return build(node)

    def _build_order(self, factors: list[Node], order) -> Node:
        if isinstance(order, int):
            return factors[order]
        left = self._build_order(factors, order[0])
        right = self._build_order(factors, order[1])
        return MatMul(left, right)

    # -- rule: common subexpression elimination -----------------------------
    def _cse(self, root: Node) -> Node:
        canon: dict[tuple, Node] = {}
        mapping: dict[int, Node] = {}

        def visit(node: Node) -> Node:
            if id(node) in mapping:
                return mapping[id(node)]
            children = tuple(visit(c) for c in node.children)
            if children != node.children:
                node2 = node.with_children(children)
            else:
                node2 = node
            key = self._canon_key(node2)
            if key in canon:
                result = canon[key]
                if result is not node2:
                    self.applied.append("cse")
            else:
                canon[key] = node2
                result = node2
            mapping[id(node)] = result
            return result

        return visit(root)

    @staticmethod
    def _canon_key(node: Node) -> tuple:
        base: tuple
        if isinstance(node, ArrayInput):
            base = ("ArrayInput", id(node.data))
        elif isinstance(node, Scalar):
            base = ("Scalar", node.value)
        elif isinstance(node, Range):
            base = ("Range", node.lo, node.hi)
        elif isinstance(node, Map):
            base = ("Map", node.op)
        elif isinstance(node, Reduce):
            base = ("Reduce", node.op)
        elif isinstance(node, SubscriptAssign):
            base = ("SubscriptAssign", node.logical_mask)
        elif isinstance(node, MatMul):
            base = ("MatMul", node.kernel, node.trans_a, node.trans_b)
        elif isinstance(node, Crossprod):
            base = ("Crossprod", node.t_first)
        else:
            base = (type(node).__name__,)
        return base + tuple(id(c) for c in node.children)


def optimize(root: Node, **kwargs) -> Node:
    """One-shot convenience: rewrite a DAG with default settings."""
    return Rewriter(**kwargs).optimize(root)
