"""Deprecated: the monolithic ``Rewriter`` — now a thin shim.

The single 447-line rule loop this module used to hold became the
two-stage optimizer: logical rewriting lives in :mod:`repro.core.passes`
(fold, CSE, subscript pushdown, transpose absorption, inv-to-solve as
independent, ordered, individually-testable passes) and the physical
choices — kernel selection, chain order, fuse-vs-materialize — moved
into the cost-based :mod:`repro.core.planner`.

``Rewriter`` is kept for one release so existing code and tests keep
working: it runs the logical pipeline *plus* the legacy chain-reorder
and kernel-select passes on the logical DAG, reproducing the old
monolith's observable behaviour (including the ``applied`` rule log).
New code should configure a session with
:class:`~repro.core.config.OptimizerConfig` and inspect plans with
``session.explain()`` instead.
"""

from __future__ import annotations

import warnings

from .config import OptimizerConfig
from .expr import Node
from .passes import (PassContext, build_pipeline, canon_key,
                     dag_signature)
from .passes.sparsity import DENSE_THRESHOLD  # noqa: F401  (re-export)


class Rewriter:
    """Deprecated facade over the logical pass pipeline.

    ``memory_scalars`` and ``block_scalars`` parameterize the I/O cost
    models used by chain reordering and kernel selection; sessions pass
    their own buffer-pool budget so plan choices match the store the
    plan will run on.
    """

    def __init__(self, enable_pushdown: bool = True,
                 enable_chain_reorder: bool = True,
                 enable_cse: bool = True,
                 enable_fold: bool = True,
                 enable_kernel_select: bool = True,
                 enable_solve_rewrite: bool = True,
                 enable_transpose_rewrite: bool = True,
                 max_passes: int = 10,
                 memory_scalars: int = 8 * 1024 * 1024,
                 block_scalars: int = 1024,
                 _quiet: bool = False) -> None:
        if not _quiet:
            warnings.warn(
                "Rewriter is deprecated: configure a RiotSession with "
                "OptimizerConfig (core.config) and inspect plans with "
                "session.explain(); the rule families live on as "
                "repro.core.passes + repro.core.planner",
                DeprecationWarning, stacklevel=2)
        self.enable_pushdown = enable_pushdown
        self.enable_chain_reorder = enable_chain_reorder
        self.enable_cse = enable_cse
        self.enable_fold = enable_fold
        self.enable_kernel_select = enable_kernel_select
        self.enable_solve_rewrite = enable_solve_rewrite
        self.enable_transpose_rewrite = enable_transpose_rewrite
        self.max_passes = max_passes
        self.memory_scalars = memory_scalars
        self.block_scalars = block_scalars
        self.applied: list[str] = []

    @classmethod
    def _from_config(cls, config: OptimizerConfig,
                     memory_scalars: int,
                     block_scalars: int) -> "Rewriter":
        """Internal constructor (no deprecation noise) used by
        RiotSession for the legacy ``session.optimize()`` path."""
        return cls(
            enable_pushdown=config.pass_enabled("pushdown"),
            enable_chain_reorder=config.choice_enabled("chain_reorder"),
            enable_cse=config.pass_enabled("cse"),
            enable_fold=config.pass_enabled("fold"),
            enable_kernel_select=config.choice_enabled("kernel_select"),
            enable_solve_rewrite=config.pass_enabled("solve_rewrite"),
            enable_transpose_rewrite=config.pass_enabled("transpose"),
            max_passes=config.max_passes,
            memory_scalars=memory_scalars,
            block_scalars=block_scalars,
            _quiet=True)

    # ------------------------------------------------------------------
    def optimize(self, root: Node) -> Node:
        """Rewrite ``root`` and return the optimized DAG.

        Flags are read at call time, so mutating ``enable_*`` between
        calls keeps working like it did on the monolith.
        """
        config = OptimizerConfig.from_legacy_flags(
            enable_pushdown=self.enable_pushdown,
            enable_chain_reorder=self.enable_chain_reorder,
            enable_cse=self.enable_cse,
            enable_fold=self.enable_fold,
            enable_kernel_select=self.enable_kernel_select,
            enable_solve_rewrite=self.enable_solve_rewrite,
            enable_transpose_rewrite=self.enable_transpose_rewrite,
            max_passes=self.max_passes)
        ctx = PassContext(memory_scalars=self.memory_scalars,
                          block_scalars=self.block_scalars)
        node = build_pipeline(config, legacy=True).run(root, ctx)
        self.applied = ctx.applied
        return node

    # Both identity helpers now come from one source of truth
    # (core.passes.signatures), so CSE keys and fixpoint signatures can
    # never disagree about kernel hints or operand flags again.
    @staticmethod
    def _signature(node: Node) -> tuple:
        return dag_signature(node)

    @staticmethod
    def _canon_key(node: Node) -> tuple:
        return canon_key(node)


def optimize(root: Node, **kwargs) -> Node:
    """One-shot convenience: rewrite a DAG with default settings."""
    return Rewriter(_quiet=True, **kwargs).optimize(root)
