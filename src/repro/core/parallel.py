"""Intra-query parallelism: plan-level and tile-level worker pools.

ROADMAP item 3.  Two deliberately separate executors that can never
deadlock on each other:

- :class:`ParallelExecutor` schedules the independent ``PhysOp``
  subtrees of a :class:`~repro.core.plan.PhysicalPlan` onto a
  ``ThreadPoolExecutor``, honoring data dependencies and the buffer
  pool's memory budget: an op is admitted only while the sum of running
  ops' predicted footprints (``op.footprint_blocks``, attached by the
  planner) fits the pool capacity — the planner's predicted I/O paying
  off a second time, as admission control.
- :class:`TileParallelism` parallelizes the *inside* of one kernel:
  the dense/sparse kernels hand it an ordered stream of pure GEMM
  thunks while the calling thread keeps issuing the kernel's
  ``pool.prefetch()`` footprints and block reads untouched, overlapping
  one panel's BLAS (which releases the GIL) with the next panel's I/O.

Determinism contract
--------------------

*Results are bitwise-identical at every parallelism level.*  Tile-level
parallelism guarantees this by construction: every pool/device
interaction stays on the calling thread in the exact serial order (the
thunk stream is consumed lazily, so reads interleave with submissions
exactly as the serial loop would issue them), workers compute pure
``a @ b`` partial products, and the caller accumulates the results in
increasing-``k`` order — the same float additions in the same order as
the serial kernel.  Consequently *simulated block counts are also
identical* for tile-parallel kernels at any worker count.

Plan-level parallelism preserves bitwise results too (operators only
read inputs their dependencies finished writing, and frames are
protected by the pool lock), but when independent operators genuinely
overlap they share the pool, so eviction interleaving can shift *which*
op a re-read is charged to; block totals for sequentially-dependent
plans (chains) stay exactly identical.  The parallel executor records
per-op *window* deltas (``op.measured``) — exact when the op ran
alone, inclusive of concurrent ops' traffic otherwise — plus the
schedule (worker, start/end); *exclusive* per-op measurement, the kind
that sums field-for-field to the session totals, is only taken on
serial (cold) runs.

BLAS interplay: workers pin OpenBLAS/MKL to one thread via
``threadpoolctl`` when it is installed (a no-op otherwise) so N plan
workers don't oversubscribe cores by another BLAS-internal factor.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .evaluator import Evaluator
    from .plan import PhysicalPlan, PhysOp

#: Environment variable consulted when OptimizerConfig.parallelism is
#: None (the default): the worker count for plan and kernel execution.
PARALLELISM_ENV = "REPRO_PARALLELISM"

#: Upper bound on workers — far above any sane setting; a typo like
#: REPRO_PARALLELISM=1000 should not spawn a thousand threads.
MAX_WORKERS = 64


def resolve_parallelism(value: int | None = None) -> int:
    """Resolve a parallelism setting to a concrete worker count.

    ``None`` defers to ``$REPRO_PARALLELISM`` (default 1 = serial).
    Values are validated (>= 1) and clamped to :data:`MAX_WORKERS`.
    """
    if value is None:
        raw = os.environ.get(PARALLELISM_ENV, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{PARALLELISM_ENV} must be an integer, got {raw!r}"
            ) from exc
    value = int(value)
    if value < 1:
        raise ValueError(f"parallelism must be >= 1, got {value}")
    return min(value, MAX_WORKERS)


@contextmanager
def single_threaded_blas() -> Iterator[None]:
    """Pin BLAS to one thread inside a worker, when threadpoolctl is
    available; otherwise a documented no-op (set OPENBLAS_NUM_THREADS=1
    / MKL_NUM_THREADS=1 externally on multithreaded-BLAS hosts)."""
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        yield
        return
    with threadpool_limits(limits=1):
        yield


class TileParallelism:
    """Ordered accumulation of kernel partial products over workers.

    :meth:`accumulate` consumes ``thunks`` — zero-arg callables, each
    returning one partial product — *on the calling thread*, so any
    I/O embedded in producing the thunk stream (prefetch hints, block
    reads) happens in serial order.  Thunks run on the worker pool;
    results are folded into ``acc`` strictly in submission order with a
    bounded in-flight window (workers + 1), which bounds the extra
    memory to a couple of panels while keeping every worker busy.
    """

    def __init__(self, workers: int) -> None:
        self.workers = resolve_parallelism(workers)
        self.window = self.workers + 1
        self._executor: ThreadPoolExecutor | None = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="riot-tile")

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @staticmethod
    def _run(fn: Callable):
        with single_threaded_blas():
            return fn()

    def accumulate(self, acc, thunks: Iterable[Callable]):
        """``for fn in thunks: acc += fn()`` — with ``fn()`` offloaded.

        In-order fold: bitwise-identical to the serial loop (numpy
        evaluates each product to a temporary, then adds in place —
        exactly what the serial kernel does).
        """
        if self._executor is None:
            for fn in thunks:
                acc += fn()
            return acc
        pending: deque = deque()
        for fn in thunks:
            pending.append(self._executor.submit(self._run, fn))
            while len(pending) >= self.window:
                acc += pending.popleft().result()
        while pending:
            acc += pending.popleft().result()
        return acc


class ParallelExecutor:
    """Topological worker-pool scheduler for one evaluator's plans.

    Dependencies come from the op tree (children before parents);
    admission control from ``op.footprint_blocks`` vs the pool
    capacity.  An op with no footprint estimate is treated as needing
    the whole budget (it runs alone); at least one op is always
    admitted so the schedule can't stall.  Results go into the shared
    ``memo`` exactly as in serial execution — an op only reads memo
    entries its finished dependencies wrote.
    """

    def __init__(self, evaluator: "Evaluator", workers: int) -> None:
        self.evaluator = evaluator
        self.workers = resolve_parallelism(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="riot-op")

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def execute(self, plan: "PhysicalPlan", memo: dict[int, object]):
        ev = self.evaluator
        ops: list[PhysOp] = list(plan.ops())
        remaining = {id(op): {id(c) for c in op.children} for op in ops}
        dependents: dict[int, list[int]] = {id(op): [] for op in ops}
        for op in ops:
            for c in op.children:
                dependents[id(c)].append(id(op))
        capacity = float(ev.store.pool.capacity)
        cond = threading.Condition()
        finished: set[int] = set()
        launched: set[int] = set()
        failures: list[BaseException] = []
        free_slots = list(range(self.workers))
        state = {"active": 0, "footprint": 0.0}
        t0 = time.perf_counter_ns()

        def fp_of(op: "PhysOp") -> float:
            fp = op.footprint_blocks
            if fp is None:
                fp = capacity
            return min(float(fp), capacity)

        def run_op(op: "PhysOp", slot: int, fp: float) -> None:
            io_before = ev.store.device.stats.snapshot()
            pool_before = ev.store.pool.stats.snapshot()
            start = time.perf_counter_ns()
            err: BaseException | None = None
            result = None
            try:
                with ev.store.tracer.span(op.label(), cat="op"):
                    result = ev._dispatch_op(op, memo)
            except BaseException as exc:
                err = exc
            end = time.perf_counter_ns()
            with cond:
                op.worker = slot
                op.sched_start_ns = start - t0
                op.sched_end_ns = end - t0
                if err is None:
                    # Window deltas: exact when nothing overlapped the
                    # op (chains), inclusive of concurrent ops' traffic
                    # otherwise.  Serial (cold) runs re-measure these
                    # exactly; see Evaluator.execute.
                    op.measured = ev.store.device.stats.delta(io_before)
                    op.pool_measured = \
                        ev.store.pool.stats.delta(pool_before)
                    op.measured_io = op.measured.total
                    op.wall_ns = end - start
                    memo[id(op.node)] = result
                    finished.add(id(op))
                    for dep in dependents[id(op)]:
                        remaining[dep].discard(id(op))
                else:
                    failures.append(err)
                state["active"] -= 1
                state["footprint"] -= fp
                free_slots.append(slot)
                cond.notify_all()

        with cond:
            while True:
                if failures:
                    while state["active"] > 0:
                        cond.wait()
                    raise failures[0]
                if len(finished) == len(ops):
                    break
                for op in ops:
                    oid = id(op)
                    if oid in launched or remaining[oid]:
                        continue
                    if state["active"] >= self.workers:
                        break
                    fp = fp_of(op)
                    if (state["active"] > 0
                            and state["footprint"] + fp > capacity):
                        continue  # budget: wait for running ops
                    launched.add(oid)
                    state["active"] += 1
                    state["footprint"] += fp
                    slot = free_slots.pop()
                    self._executor.submit(run_op, op, slot, fp)
                # Re-checked on every completion; the timeout is a
                # belt-and-braces guard against a lost wakeup ever
                # hanging a run.
                cond.wait(timeout=0.5)

        wall_ns = time.perf_counter_ns() - t0
        sched = [{"label": op.label(), "worker": op.worker,
                  "start_ns": op.sched_start_ns,
                  "end_ns": op.sched_end_ns}
                 for op in sorted(ops,
                                  key=lambda o: o.sched_start_ns or 0)]
        plan.parallel_schedule = {
            "workers": self.workers,
            "wall_ns": wall_ns,
            "sum_op_ns": plan.sum_op_ns(),
            "critical_path_ns": plan.critical_path_ns(),
            "ops": sched,
        }
        plan.executed = True
        return memo[id(plan.root.node)]
