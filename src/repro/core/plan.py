"""Physical plans: trees of executable operators with costed choices.

The second stage of the optimizer.  The logical pass pipeline
(:mod:`repro.core.passes`) rewrites the expression DAG; the planner
(:mod:`repro.core.planner`) then lowers it to a :class:`PhysicalPlan` —
a DAG of :class:`PhysOp` nodes, each naming the concrete kernel or
access path that will run, the I/O the cost models predict for it, and
the alternatives that were enumerated and rejected.  The evaluator
executes plans op by op, recording the *measured* device blocks each
operator triggered next to its prediction — which is exactly what
``session.explain()`` prints.

Every op keeps a reference to the logical node it computes; execution
memoizes results by logical node, so shared subplans (CSE survivors)
run once.
"""

from __future__ import annotations

from .expr import Node


class PhysOp:
    """One physical operator.

    ``predicted_io`` covers this operator's *own* work in device
    blocks (reading its inputs, writing its output) — children are
    costed by their own ops.  ``measured_io`` is filled in by the
    evaluator: the device-block delta while this op ran.  Writes are
    attributed to the operator that triggered the device transfer, so
    a dirty block flushed during a later operator counts there; totals
    are exact, per-op splits are approximate.

    ``alternatives`` lists ``(label, predicted_io)`` pairs for the
    candidate strategies the planner enumerated and rejected.

    ``cost_model`` names the :mod:`repro.core.costs` model that priced
    this operator (``None`` for leaves/constants) — the grouping key of
    :class:`repro.obs.CalibrationReport`.  ``cost_inputs`` carries the
    model's inputs (dimensions, tile counts, nnz, trans flags) so a
    drifted prediction is diagnosable from the explain transcript
    alone.  After execution the evaluator fills the full measurement
    trio: ``measured`` (an ``IOStats`` delta: blocks split seq/rand,
    bytes, syscalls, read/write ns), ``pool_measured`` (a ``PoolStats``
    delta) and ``wall_ns``; ``measured_io`` stays the plain block total
    for backward compatibility.
    """

    kind = "op"
    #: Name of the repro.core.costs model behind predicted_io, or None.
    cost_model: str | None = None

    def __init__(self, node: Node, children: tuple["PhysOp", ...] = (),
                 predicted_io: float = 0.0, detail: str = "",
                 alternatives: list[tuple[str, float]] | None = None
                 ) -> None:
        self.node = node
        self.children = tuple(children)
        self.predicted_io = float(predicted_io)
        self.detail = detail
        self.alternatives = list(alternatives or [])
        self.cost_inputs: dict[str, object] = {}
        self.measured_io: int | None = None
        self.measured = None       # IOStats delta once executed
        self.pool_measured = None  # PoolStats delta once executed
        self.wall_ns: int | None = None
        #: Predicted peak buffer-pool frames this op needs while running
        #: (attached by the planner) — the parallel executor's admission
        #: currency.  None means "assume the whole budget".
        self.footprint_blocks: float | None = None
        # Filled by the parallel executor: which worker slot ran the op
        # and when (ns relative to the schedule's start).
        self.worker: int | None = None
        self.sched_start_ns: int | None = None
        self.sched_end_ns: int | None = None

    def label(self) -> str:
        return self.kind + (f"[{self.detail}]" if self.detail else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.label()} ~{self.predicted_io:.0f} blk>"


class LeafOp(PhysOp):
    """A stored array: nothing to do, consumers read it."""

    kind = "input"

    def label(self) -> str:
        name = getattr(self.node, "name", "")
        return f"input:{name}" if name else "input"


class ScalarOp(PhysOp):
    kind = "const"

    def label(self) -> str:
        return f"const:{self.node.label()}"


class RangeOp(PhysOp):
    kind = "range"
    cost_model = "stream_io"


class MapOp(PhysOp):
    """A fused elementwise streaming region (vector, scalar or
    tile-aligned matrix).  Children are the region's barriers and
    stored inputs; the interior applies the whole scalar expression
    tree per chunk/tile."""

    kind = "map"
    cost_model = "stream_io"

    def label(self) -> str:
        return f"map:{self.node.label()}" + (
            f"[{self.detail}]" if self.detail else "")


class GatherOp(PhysOp):
    kind = "gather"
    cost_model = "gather_io"


class ScatterOp(PhysOp):
    kind = "scatter"
    cost_model = "scatter_io"


class ReduceOp(PhysOp):
    kind = "reduce"
    cost_model = "stream_io"

    def label(self) -> str:
        return f"reduce:{self.node.op}"


class TileMatMulOp(PhysOp):
    """Dense Appendix-A square-tile multiply (flags transposed in
    memory)."""

    kind = "matmul.square"
    cost_model = "matmul_io"


class BnljOp(PhysOp):
    """The §3 block-nested-loop-join-inspired multiply."""

    kind = "matmul.bnlj"
    cost_model = "bnlj_io"


class CrossprodOp(PhysOp):
    """Symmetric ``t(A) %*% A`` — upper-triangular blocks only."""

    kind = "crossprod"
    cost_model = "crossprod_io"


class SparseSpMMOp(PhysOp):
    kind = "matmul.spmm"
    cost_model = "spmm_io"


class SparseSpGEMMOp(PhysOp):
    kind = "matmul.spgemm"
    cost_model = "spgemm_io"


class LUSolveOp(PhysOp):
    """Pivoted out-of-core LU factorization + blocked substitution."""

    kind = "solve.lu"
    cost_model = "solve_io"


class InverseOp(PhysOp):
    kind = "inverse.lu"
    cost_model = "inverse_io"


class TransposeOp(PhysOp):
    """Explicit transpose materialization — the fallback disk pass the
    operand flags normally delete."""

    kind = "transpose.materialize"
    cost_model = "transpose_io"


class FusedEpilogueOp(PhysOp):
    """A product with its elementwise consumers fused in: the epilogue
    is applied to each output submatrix while memory-resident, so the
    raw product never reaches disk.

    ``barrier`` is the MatMul/Crossprod logical node; ``matrix_nodes``
    and ``scalar_nodes`` are the region's extra inputs (their ops are
    among ``children``).
    """

    kind = "matmul+epilogue"
    cost_model = "matmul_epilogue_io"  # planner overrides per instance

    def __init__(self, node: Node, barrier: Node,
                 matrix_nodes: list[Node], scalar_nodes: list[Node],
                 **kwargs) -> None:
        super().__init__(node, **kwargs)
        self.barrier = barrier
        self.matrix_nodes = list(matrix_nodes)
        self.scalar_nodes = list(scalar_nodes)


class PhysicalPlan:
    """A lowered DAG: root operator plus bookkeeping for explain."""

    def __init__(self, logical_root: Node, root: PhysOp,
                 level: int) -> None:
        self.logical_root = logical_root
        self.root = root
        self.level = level
        self.executed = False
        #: Filled by the parallel executor: workers, wall_ns,
        #: critical_path_ns, sum_op_ns and the per-op schedule; the
        #: session adds baseline_wall_ns after the serial analyze run.
        self.parallel_schedule: dict | None = None

    # -- traversal -----------------------------------------------------
    def ops(self):
        """Yield each distinct operator once, children first."""
        seen: set[int] = set()

        def visit(op: PhysOp):
            if id(op) in seen:
                return
            seen.add(id(op))
            for c in op.children:
                yield from visit(c)
            yield op

        yield from visit(self.root)

    @property
    def total_predicted(self) -> float:
        return sum(op.predicted_io for op in self.ops())

    @property
    def total_measured(self) -> int | None:
        if not self.executed:
            return None
        return sum(op.measured_io or 0 for op in self.ops())

    # -- parallel schedule ---------------------------------------------
    @staticmethod
    def _op_duration_ns(op: PhysOp) -> int:
        if op.sched_start_ns is not None and op.sched_end_ns is not None:
            return op.sched_end_ns - op.sched_start_ns
        return op.wall_ns or 0

    def sum_op_ns(self) -> int:
        """Total op work (ns): what one worker would take back-to-back."""
        return sum(self._op_duration_ns(op) for op in self.ops())

    def critical_path_ns(self) -> int:
        """Length (ns) of the longest dependency chain through the plan
        — the lower bound no worker count can beat."""
        memo: dict[int, int] = {}

        def visit(op: PhysOp) -> int:
            cached = memo.get(id(op))
            if cached is not None:
                return cached
            below = max((visit(c) for c in op.children), default=0)
            memo[id(op)] = total = self._op_duration_ns(op) + below
            return total

        return visit(self.root)

    def render_schedule(self) -> str:
        """Render the parallel executor's schedule: per-op worker
        assignment and timeline, critical path vs sum-of-op time, and
        (when the session ran the serial baseline) measured speedup."""
        sched = self.parallel_schedule
        if not sched:
            return "(no parallel schedule recorded)"
        lines = [f"-- parallel schedule (workers={sched['workers']}) --"]
        for entry in sched["ops"]:
            start = (entry["start_ns"] or 0) / 1e6
            end = (entry["end_ns"] or 0) / 1e6
            lines.append(f"w{entry['worker']}  "
                         f"{start:9.3f} -{end:9.3f} ms  "
                         f"{entry['label']}")
        crit = sched["critical_path_ns"] / 1e6
        total = sched["sum_op_ns"] / 1e6
        bound = total / crit if crit > 0 else 1.0
        lines.append(f"critical path {crit:.3f} ms | sum of op time "
                     f"{total:.3f} ms | parallelizable up to "
                     f"{bound:.2f}x")
        wall = sched["wall_ns"] / 1e6
        base_ns = sched.get("baseline_wall_ns")
        if base_ns:
            speedup = base_ns / sched["wall_ns"]
            lines.append(f"measured: {wall:.3f} ms at workers="
                         f"{sched['workers']} vs {base_ns / 1e6:.3f} ms "
                         f"serial | speedup {speedup:.2f}x")
        else:
            lines.append(f"measured: {wall:.3f} ms wall")
        return "\n".join(lines)

    # -- rendering -----------------------------------------------------
    def signature(self) -> str:
        """Compact one-line structural fingerprint for golden tests:
        operator kinds, details and tree shape — no cost numbers."""
        seen: set[int] = set()

        def visit(op: PhysOp) -> str:
            if id(op) in seen and op.children:
                return f"{op.label()}(shared)"
            seen.add(id(op))
            if not op.children:
                return op.label()
            inner = ", ".join(visit(c) for c in op.children)
            return f"{op.label()}({inner})"

        return visit(self.root)

    def render(self, analyze: bool = False,
               band: tuple[float, float] = (0.5, 2.0)) -> str:
        """Indented operator tree with predicted (and, once executed,
        measured) block I/O per operator.

        With ``analyze=True`` (after executing under the tracer) each
        measured operator additionally prints its full I/O delta
        (bytes, syscalls, read/write time), the buffer-pool behavior it
        triggered, wall-clock seconds, and the measured/predicted
        ratio — flagged with ``!!`` when it leaves ``band``, the
        0.5–2.0x range the cost models are validated against.
        """
        lines: list[str] = []
        seen: set[int] = set()

        def visit(op: PhysOp, indent: int) -> None:
            pad = "  " * indent
            label = f"{pad}{op.label()}"
            if id(op) in seen and op.children:
                lines.append(f"{label:<44} (shared)")
                return
            seen.add(id(op))
            cost = f"predicted ~{op.predicted_io:.1f} blk"
            if op.measured_io is not None:
                cost += f" | measured {op.measured_io} blk"
            lines.append(f"{label:<44} {cost}")
            if op.cost_inputs:
                inputs = " ".join(f"{k}={v}" for k, v
                                  in sorted(op.cost_inputs.items()))
                model = op.cost_model or "?"
                lines.append(f"{pad}  (cost: {model} {inputs})")
            if analyze and op.measured_io is not None:
                self._render_measurement(lines, pad, op, band)
            for alt, io in op.alternatives:
                lines.append(f"{pad}  (rejected: {alt} "
                             f"~{io:.1f} blk)")
            for c in op.children:
                visit(c, indent + 1)

        visit(self.root, 0)
        total = f"total predicted ~{self.total_predicted:.1f} blk"
        if self.executed:
            total += f" | measured {self.total_measured} blk"
        lines.append(total)
        return "\n".join(lines)

    @staticmethod
    def _render_measurement(lines: list[str], pad: str, op: PhysOp,
                            band: tuple[float, float]) -> None:
        """Append the EXPLAIN ANALYZE detail lines for one operator."""
        io = op.measured
        if io is not None and io.total:
            lines.append(
                f"{pad}  io: {io.reads} rd / {io.writes} wr blk, "
                f"{io.bytes_read + io.bytes_written} bytes, "
                f"{io.syscalls} syscalls, "
                f"{io.seconds * 1e3:.3f} ms device")
        pool = op.pool_measured
        if pool is not None and pool.accesses:
            line = (f"{pad}  pool: {pool.hits} hits / "
                    f"{pool.misses} misses")
            if pool.prefetched:
                line += (f", {pool.prefetched} prefetched "
                         f"({pool.readahead_hits} hit, "
                         f"{pool.prefetch_wasted} wasted)")
            lines.append(line)
        if op.wall_ns is not None:
            wall = f"{pad}  wall: {op.wall_ns / 1e6:.3f} ms"
            if op.predicted_io > 0 and op.measured_io is not None:
                ratio = op.measured_io / op.predicted_io
                wall += f" | ratio {ratio:.2f}"
                if not band[0] <= ratio <= band[1]:
                    wall += (f" !! outside [{band[0]}, {band[1]}] "
                             f"validated band")
            lines.append(wall)
