"""Matrix-chain workload configurations (§5 / Figure 3).

Provides the Figure-3 matrix shapes at paper scale (for the analytic cost
models) and scaled-down instances with real data (for the measured
out-of-core runs in benchmarks and tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import fig3_dims


@dataclass(frozen=True)
class ChainConfig:
    """One A·B·C instance: dimensions plus generation seed."""

    n: int
    skew: float
    seed: int = 0

    @property
    def dims(self) -> list[int]:
        return fig3_dims(self.n, self.skew)

    @property
    def shapes(self) -> list[tuple[int, int]]:
        d = self.dims
        return [(d[0], d[1]), (d[1], d[2]), (d[2], d[3])]


#: The paper's Figure-3 parameter grid (analytic scale).
PAPER_FIG3A = [ChainConfig(n, 2.0) for n in (100_000, 120_000)]
PAPER_FIG3B = [ChainConfig(100_000, float(s)) for s in (2, 4, 6, 8)]

#: Laptop-scale instances that keep the same aspect ratios.
MEASURED_SCALE = [ChainConfig(512, float(s), seed=11)
                  for s in (2, 4, 8)]


def generate_chain(config: ChainConfig) -> list[np.ndarray]:
    """Materialize the three matrices of a (laptop-scale) config."""
    total = sum(r * c for r, c in config.shapes)
    if total > 64_000_000:
        raise ValueError(
            f"config {config} is paper-scale ({total:,} scalars); use "
            "the analytic cost models instead of generating data")
    rng = np.random.default_rng(config.seed)
    return [rng.standard_normal(shape) for shape in config.shapes]


def load_chain(store, config: ChainConfig, layout: str = "square"):
    """Generate and store a chain's matrices on a tile store."""
    return [store.matrix_from_numpy(m, layout=layout)
            for m in generate_chain(config)]
