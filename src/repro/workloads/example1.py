"""Example 1 of the paper: path lengths through 2-D points.

    (1) d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
    (2) s <- sample(length(x), 100)
    (3) z <- d[s]
        print(z)

The harness pre-builds ``x`` and ``y`` on the engine (data generation is not
part of the measured program, matching the paper's setup where the vectors
already exist) and then runs the program source unmodified on every engine.
"""

from __future__ import annotations

import numpy as np

from repro.engines import Engine, RunResult
from repro.rlang.values import RScalar

#: The paper's program, verbatim up to the print that forces computation.
SOURCE = """
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
"""

#: Endpoint coordinates used in every run (arbitrary but fixed).
ENDPOINTS = {"xs": 0.0, "ys": 0.0, "xe": 100.0, "ye": 100.0}


def generate_points(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic 2-D point cloud of size n."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 100.0, size=n)
    y = rng.uniform(0.0, 100.0, size=n)
    return x, y


def expected_z(x: np.ndarray, y: np.ndarray,
               sample_idx: np.ndarray) -> np.ndarray:
    """Reference answer computed directly with numpy (0-based sample)."""
    xs, ys, xe, ye = (ENDPOINTS["xs"], ENDPOINTS["ys"],
                      ENDPOINTS["xe"], ENDPOINTS["ye"])
    d = (np.sqrt((x - xs) ** 2 + (y - ys) ** 2)
         + np.sqrt((x - xe) ** 2 + (y - ye) ** 2))
    return d[sample_idx]


def run_example1(engine: Engine, n: int, seed: int = 7,
                 program_seed: int = 20090104) -> RunResult:
    """Run Example 1 on ``engine`` with pre-built inputs of size ``n``.

    Engine statistics are reset after data loading so the reported I/O
    covers only the program, mirroring how the paper measured steady-state
    query I/O rather than initial data import.
    """
    x, y = generate_points(n, seed=seed)
    env = {
        "x": engine.make_vector(x),
        "y": engine.make_vector(y),
        **{name: RScalar(value) for name, value in ENDPOINTS.items()},
    }
    engine.reset_stats()
    return engine.run_program(SOURCE, seed=program_seed, env=env)
