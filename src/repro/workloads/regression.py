"""Out-of-core ordinary least squares — a motivating statistical workload.

The paper's introduction targets statisticians whose data outgrew memory;
OLS over a tall design matrix is the canonical such computation.  This
module solves the normal equations entirely on the tile store:

    beta = (X'X)^{-1} X'y

using the symmetric transpose-free crossprod kernel for X'X, a
transposed-operand-flagged square-tile multiply for X'y, and the blocked
out-of-core *partial-pivoting* LU solver for the final system.  ``t(X)``
is never stored: both multiplies read X's tiles in their stored layout
and transpose each tile in memory, deleting the full extra disk pass
(read X + write t(X)) earlier versions paid before the first multiply
even started.  Pivoting means the solve is correct for any nonsingular
normal-equation matrix — ill-conditioned or nearly collinear designs
included — not just the diagonally dominant systems the unpivoted
Doolittle factorization could survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg import crossprod_matmul, lu_solve, square_tile_matmul
from repro.storage import ArrayStore


@dataclass
class RegressionProblem:
    """A synthetic y = X beta + noise instance."""

    x: np.ndarray
    y: np.ndarray
    beta_true: np.ndarray


def generate_problem(n_obs: int, n_feat: int, noise: float = 0.01,
                     seed: int = 0,
                     collinearity: float = 0.0) -> RegressionProblem:
    """Draw a synthetic OLS instance.

    ``collinearity`` in [0, 1) mixes each feature with a shared latent
    factor, driving X'X away from diagonal dominance toward
    near-singularity — the regime the pivoted solver handles and the
    old unpivoted factorization could not be trusted with.
    """
    rng = np.random.default_rng(seed)
    beta = rng.standard_normal(n_feat)
    x = rng.standard_normal((n_obs, n_feat))
    if collinearity:
        latent = rng.standard_normal(n_obs)
        x = ((1.0 - collinearity) * x
             + collinearity * latent[:, None])
    y = x @ beta + noise * rng.standard_normal(n_obs)
    return RegressionProblem(x, y, beta)


def ols_out_of_core(problem: RegressionProblem,
                    memory_scalars: int = 96 * 1024,
                    block_size: int = 8192,
                    storage=None) -> tuple[np.ndarray, object]:
    """Solve the normal equations on a memory-capped tile store.

    Returns ``(beta_hat, io_stats)``.  X'X runs the symmetric
    :func:`repro.linalg.crossprod_matmul` (upper-triangular blocks only,
    mirrored on write) and X'y a ``trans_a``-flagged square-tile
    multiply — both read X in its stored layout, so no transposed copy
    of the design matrix ever touches the disk.  The final system goes
    through the pivoted :func:`repro.linalg.lu_solve`, so the design
    needs no conditioning tricks.

    ``storage`` (a :class:`~repro.storage.StorageConfig`) selects the
    backing device — a file backend makes the same block traffic cost
    real seconds; ``memory_scalars``/``block_size`` are derived from it
    when given.
    """
    if storage is not None:
        memory_scalars = storage.memory_bytes // 8
        store = ArrayStore(storage=storage)
    else:
        store = ArrayStore(memory_bytes=memory_scalars * 8,
                           block_size=block_size)
    x = store.matrix_from_numpy(problem.x, layout="square", name="X")
    y = store.matrix_from_numpy(problem.y.reshape(-1, 1),
                                layout="square", name="y")
    store.pool.clear()
    store.reset_stats()
    xtx = crossprod_matmul(store, x, memory_scalars, name="XtX")
    xty = square_tile_matmul(store, x, y, memory_scalars, name="Xty",
                             trans_a=True)
    beta = lu_solve(store, xtx, xty.to_numpy().ravel(), memory_scalars)
    store.flush()
    return beta, store.device.stats
