"""Workloads from the paper plus realistic extras."""

from .chains import (ChainConfig, MEASURED_SCALE, PAPER_FIG3A, PAPER_FIG3B,
                     generate_chain, load_chain)
from .example1 import (ENDPOINTS, SOURCE, expected_z, generate_points,
                       run_example1)
from .regression import (RegressionProblem, generate_problem,
                         ols_out_of_core)

__all__ = ["ChainConfig", "ENDPOINTS", "MEASURED_SCALE", "PAPER_FIG3A",
           "PAPER_FIG3B", "RegressionProblem", "SOURCE", "expected_z",
           "generate_chain", "generate_points", "generate_problem",
           "load_chain", "ols_out_of_core", "run_example1"]
