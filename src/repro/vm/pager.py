"""Virtual-memory simulator: the substrate under the "Plain R" engine.

The paper ran R under an 84 MB physical-memory cap (enforced with
``shmat``-based memory locking on Solaris) and measured swap traffic with
DTrace.  Here the operating system's paging behaviour is simulated directly:

- virtual pages are faulted in on first touch (zero-fill, no read I/O),
- when resident pages exceed the physical capacity the least-recently-used
  page is evicted, paying a swap **write** if it is dirty,
- re-touching a page that was swapped out pays a swap **read**.

All swap traffic goes through a :class:`~repro.storage.BlockDevice`, so the
Plain-R numbers in Figure 1(a) come from the same counters as every other
engine's I/O.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.storage import (DEFAULT_BLOCK_SIZE, IOStats, StorageConfig,
                           create_device)


@dataclass
class PageState:
    """Bookkeeping for one virtual page."""

    swapped: bool = False   # a copy exists in swap space
    dirty: bool = False     # resident copy differs from swap copy
    swap_block: int = -1    # block id in the swap device, once assigned


class Pager:
    """Capped physical memory with LRU replacement and counted swap I/O."""

    def __init__(self, memory_bytes: int,
                 page_size: int = DEFAULT_BLOCK_SIZE,
                 readahead_pages: int = 0,
                 swap_storage: StorageConfig | None = None) -> None:
        """``readahead_pages > 0`` turns on batched swap-in for
        :meth:`touch_range`: the range's swapped-out pages are read in
        windows of that many pages through
        :meth:`~repro.storage.BlockDevice.read_blocks`, so adjacent swap
        blocks coalesce into single device calls.  Swap traffic *totals*
        are unchanged — this models OS swap readahead, and defaults to
        off so the paper's thrashing figures keep their access pattern.

        ``swap_storage`` selects the device backing swap space (memory
        simulator by default; a file backend makes swap thrashing cost
        real seconds).  Its block size is forced to ``page_size``.
        """
        if memory_bytes < page_size:
            raise ValueError(
                f"memory of {memory_bytes} bytes is smaller than one page")
        if readahead_pages < 0:
            raise ValueError(
                f"readahead_pages must be >= 0, got {readahead_pages}")
        self.page_size = page_size
        self.capacity_pages = memory_bytes // page_size
        self.readahead_pages = readahead_pages
        swap_config = (swap_storage or StorageConfig()).with_options(
            block_size=page_size)
        self.swap = create_device(swap_config, name="swap")
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._pages: dict[int, PageState] = {}
        self._swapin_ready: set[int] = set()
        self._next_page = 0
        self.faults = 0
        self.peak_resident = 0

    # ------------------------------------------------------------------
    # Address-space management
    # ------------------------------------------------------------------
    def allocate(self, n_pages: int) -> int:
        """Reserve ``n_pages`` of virtual address space; return first id.

        Like ``mmap``, allocation is lazy: pages become resident on first
        touch, not here.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        first = self._next_page
        self._next_page += n_pages
        return first

    def free(self, first_page: int, n_pages: int) -> None:
        """Release pages (GC of an R object): drops residency and swap copy."""
        for pid in range(first_page, first_page + n_pages):
            self._resident.pop(pid, None)
            self._swapin_ready.discard(pid)
            state = self._pages.pop(pid, None)
            if state is not None and state.swap_block >= 0:
                self.swap.free(state.swap_block)

    # ------------------------------------------------------------------
    # Touching pages
    # ------------------------------------------------------------------
    def touch(self, page_id: int, *, write: bool = False) -> None:
        """Access one page, faulting and evicting as required."""
        if not 0 <= page_id < self._next_page:
            raise IndexError(f"page {page_id} was never allocated")
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
        else:
            self.faults += 1
            self._make_room()
            state = self._pages.get(page_id)
            if state is None:
                state = PageState()
                self._pages[page_id] = state
            if state.swapped:
                # Swap-in: read the stored copy back (unless a batched
                # touch_range readahead already brought it in).
                if page_id in self._swapin_ready:
                    self._swapin_ready.discard(page_id)
                else:
                    self.swap.read_block(state.swap_block)
                state.dirty = False
            self._resident[page_id] = None
            if len(self._resident) > self.peak_resident:
                self.peak_resident = len(self._resident)
        if write:
            self._pages.setdefault(page_id, PageState()).dirty = True

    def touch_range(self, first_page: int, n_pages: int, *,
                    write: bool = False) -> None:
        """Touch ``n_pages`` consecutive pages in ascending order.

        With ``readahead_pages`` set, the swapped-out pages of each
        upcoming window are read from swap in one coalesced batch before
        the individual touches, which then find their copy "in transit"
        and skip the synchronous single-block read.
        """
        window = min(self.readahead_pages, self.capacity_pages)
        for start in range(first_page, first_page + n_pages,
                           max(window, 1)):
            end = min(start + max(window, 1), first_page + n_pages)
            if window > 1:
                self._swapin_batch(range(start, end))
            for pid in range(start, end):
                self.touch(pid, write=write)

    def _swapin_batch(self, pids: range) -> None:
        """Read the swap copies of the window's swapped-out pages in one
        coalesced multi-block I/O (charged as prefetched blocks)."""
        need = [pid for pid in pids
                if pid not in self._resident
                and pid in self._pages and self._pages[pid].swapped
                and pid not in self._swapin_ready]
        if not need:
            return
        self.swap.read_blocks(
            sorted(self._pages[pid].swap_block for pid in need))
        self.swap.stats.prefetched += len(need)
        self._swapin_ready.update(need)

    def _make_room(self) -> None:
        while len(self._resident) >= self.capacity_pages:
            victim, _ = self._resident.popitem(last=False)
            state = self._pages[victim]
            if state.dirty or not state.swapped:
                if state.swap_block < 0:
                    state.swap_block = self.swap.allocate(1)
                # Swap-out: write the page (content is irrelevant to the
                # simulation; a zero page stands in for the real bytes).
                self.swap.write_block(
                    state.swap_block,
                    np.zeros(self.page_size, dtype=np.uint8))
                state.swapped = True
                state.dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def stats(self) -> IOStats:
        """Swap I/O counters (the Plain-R 'disk I/O' of Figure 1(a))."""
        return self.swap.stats

    def reset_stats(self) -> None:
        self.swap.reset_stats()
        self.faults = 0
        self.peak_resident = len(self._resident)

    def pages_for_bytes(self, n_bytes: int) -> int:
        return max(1, -(-n_bytes // self.page_size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Pager(capacity={self.capacity_pages} pages, "
                f"resident={self.resident_pages}, faults={self.faults})")
