"""Simulated virtual memory: the substrate beneath the Plain-R engine."""

from .mem_array import MemArray, MemHeap
from .pager import Pager, PageState

__all__ = ["MemArray", "MemHeap", "Pager", "PageState"]
