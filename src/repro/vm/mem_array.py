"""Arrays living in simulated virtual memory.

A :class:`MemArray` pairs real numpy data (so results stay numerically
correct) with a span of virtual pages in a :class:`~repro.vm.pager.Pager`
(so every access pays its simulated paging cost).  The Plain-R engine builds
all of R's eager vector semantics on top of these: each operation allocates a
result array and streams through the operands page by page, exactly the
access pattern whose cost explodes once arrays stop fitting in memory.
"""

from __future__ import annotations

import numpy as np

from .pager import Pager

_FLOAT_BYTES = 8


class MemArray:
    """A float64 vector or matrix backed by simulated memory pages."""

    def __init__(self, pager: Pager, data: np.ndarray,
                 name: str = "") -> None:
        self.pager = pager
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.name = name
        n_bytes = max(self.data.size, 1) * _FLOAT_BYTES
        self.n_pages = pager.pages_for_bytes(n_bytes)
        self.first_page = pager.allocate(self.n_pages)
        self._freed = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.data.size

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def elements_per_page(self) -> int:
        return self.pager.page_size // _FLOAT_BYTES

    def page_of_element(self, flat_index: int) -> int:
        """Virtual page holding the element at ``flat_index``."""
        if not 0 <= flat_index < max(self.size, 1):
            raise IndexError(
                f"element {flat_index} outside array of {self.size}")
        return self.first_page + flat_index // self.elements_per_page

    # ------------------------------------------------------------------
    def touch_all(self, *, write: bool = False) -> None:
        """Stream through the whole array in address order."""
        self._check_alive()
        self.pager.touch_range(self.first_page, self.n_pages, write=write)

    def touch_pages_of(self, flat_indices: np.ndarray, *,
                       write: bool = False) -> None:
        """Touch only the pages containing the given elements.

        Deduplicates indices per page: fetching 100 random elements touches
        at most 100 pages, the way selective evaluation would.
        """
        self._check_alive()
        idx = np.asarray(flat_indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= max(self.size, 1):
            raise IndexError("element index out of range")
        pages = np.unique(self.first_page + idx // self.elements_per_page)
        for pid in pages:
            self.pager.touch(int(pid), write=write)

    def free(self) -> None:
        """Release the simulated pages (GC of this R object)."""
        if not self._freed:
            self.pager.free(self.first_page, self.n_pages)
            self._freed = True

    def _check_alive(self) -> None:
        if self._freed:
            raise RuntimeError(
                f"use after free of MemArray {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MemArray(name={self.name!r}, shape={self.shape}, "
                f"pages={self.n_pages})")


class MemHeap:
    """Allocator/GC facade the Plain-R engine uses for its objects.

    Models R's memory manager under the generous assumption the paper makes:
    *"even with a smart garbage collector that immediately reclaims memory as
    soon as an intermediate result is no longer needed"* — temporaries are
    freed the moment their consumer has streamed over them, which is the
    best case for plain R.  Thrashing shows up anyway, exactly as §3 argues.
    """

    def __init__(self, pager: Pager) -> None:
        self.pager = pager
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self._counter = 0

    def alloc(self, data: np.ndarray, name: str = "") -> MemArray:
        self._counter += 1
        arr = MemArray(self.pager, data, name or f"tmp_{self._counter}")
        self.live_bytes += arr.n_pages * self.pager.page_size
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        return arr

    def release(self, arr: MemArray) -> None:
        if not arr._freed:
            self.live_bytes -= arr.n_pages * self.pager.page_size
            arr.free()
