"""CLI for the repo-specific linter: ``python -m repro.analysis src/``.

Prints one ``path:line:col: CODE message`` line per finding (the
compiler-error shape editors and CI annotate) and exits 1 when any rule
fired, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import sys

from .lint import ALL_RULES, run_lint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="RIOT repo lint: storage/plan/span/determinism/"
                    "codec conventions checked on the AST "
                    "(rules RPR001-5).")
    parser.add_argument(
        "paths", nargs="+",
        help="files or directories to lint (directories recurse)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes to run "
             f"(default: all of {','.join(ALL_RULES)})")
    args = parser.parse_args(argv)
    select = None
    if args.select:
        select = {code.strip().upper()
                  for code in args.select.split(",") if code.strip()}
        unknown = select - set(ALL_RULES)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")
    findings = run_lint(args.paths, select)
    for finding in findings:
        print(finding.render())
    print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
