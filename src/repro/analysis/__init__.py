"""Static analysis and runtime sanitizers for the RIOT storage protocol.

Three layers, one goal — make protocol violations fail loudly before
they become heisenbugs under the concurrent buffer pool the roadmap is
heading toward:

- :mod:`repro.analysis.lint` — repo-specific AST lint rules
  (``python -m repro.analysis src/``): device construction stays in
  the storage factory, planner operators name registered cost models,
  spans always close, plan costing is deterministic.
- :mod:`repro.analysis.planlint` — :func:`verify_plan`, a static
  walk of a :class:`~repro.core.plan.PhysicalPlan` before execution:
  shape conformability, per-op footprint vs the pool budget, kernel
  pins, epilogue-fusion legality, sane predictions.  Wired into
  ``Evaluator.execute`` / ``session.explain`` under
  ``OptimizerConfig(strict=True)``.
- :mod:`repro.analysis.sanitizers` — :class:`SanitizingBufferPool`,
  an ASAN-style pool wrapper (``StorageConfig(sanitize=True)`` or
  ``REPRO_SANITIZE=1``) catching pin leaks, use-after-unpin of
  zero-copy views, discards of pinned blocks and unannounced reads
  inside kernel spans.
"""

from .lint import ALL_RULES, Finding, lint_file, run_lint
from .planlint import PlanVerificationError, verify_plan
from .sanitizers import (CrossThreadUnpinError, PinLeakError,
                         PinnedDiscardError, SanitizerError,
                         SanitizingBufferPool, UnannouncedReadError,
                         UseAfterUnpinError)

__all__ = [
    "ALL_RULES", "Finding", "lint_file", "run_lint",
    "PlanVerificationError", "verify_plan",
    "SanitizerError", "SanitizingBufferPool", "PinLeakError",
    "UseAfterUnpinError", "PinnedDiscardError", "UnannouncedReadError",
    "CrossThreadUnpinError",
]
