"""Runtime storage-protocol sanitizers (ASAN for the buffer pool).

The storage protocol every kernel must follow — announce the footprint
it is about to read, pin blocks for exactly as long as it uses them,
never discard what is pinned — is what makes the I/O accounting exact
and what the coming concurrent buffer pool will depend on for
correctness.  Violations today are silent: ``unpin`` tolerates
over-release, ``invalidate`` quietly drops pinned frames, and an
unannounced read just costs an uncoalesced miss.

:class:`SanitizingBufferPool` is a drop-in :class:`BufferPool`
subclass that turns each hazard into a loud, typed error at the point
of violation.  Enable it with ``StorageConfig(sanitize=True)`` or
``REPRO_SANITIZE=1`` — every :class:`~repro.storage.ArrayStore` then
builds its pool sanitizing and registers a span observer on the
store's tracer, so span boundaries are visible even when tracing
itself is off.

Detected hazards:

- **Pin leak** (:class:`PinLeakError`): pin counts at a span's close
  differ from its open — some code path pinned without unpinning (or
  over-released) inside the span.
- **Use-after-unpin** (:class:`UseAfterUnpinError`): a zero-copy
  ``block_view()`` tile (mmap backend) is still referenced when its
  block's pin count drops to zero.  Like ASAN, detection happens at
  the *release* point: the view would dangle the moment the frame is
  recycled.
- **Pinned discard** (:class:`PinnedDiscardError`): ``invalidate()``
  on a block something still holds pinned.
- **Unannounced read** (:class:`UnannouncedReadError`): a demand miss
  inside a ``cat="kernel"`` span on a block the kernel neither
  announced via ``prefetch()`` nor wrote via ``put()``.  Only enforced
  for kernels that participate in the hint protocol (made at least one
  announcement in the span): kernels reading operands from a foreign
  store legitimately skip hinting altogether.
- **Cross-thread unpin** (:class:`CrossThreadUnpinError`): a worker
  releases a pin some *other* thread took.  Pins are ownership — the
  pinning thread is the one relying on the frame staying resident, so
  another thread releasing it re-creates exactly the dangling-frame
  hazard pinning exists to prevent.

The sanitizer is thread-aware like the pool it wraps: span stacks and
pin ownership are tracked per thread (parallel plan workers each get
their own), and all bookkeeping runs under the pool's re-entrant lock,
so pin-leak accounting stays exact per worker span.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.storage.buffer_pool import BufferPool


class SanitizerError(RuntimeError):
    """Base class for storage-protocol violations."""


class PinLeakError(SanitizerError):
    """Pin counts at span close differ from span open."""


class UseAfterUnpinError(SanitizerError):
    """A zero-copy block view outlived its block's pin."""


class PinnedDiscardError(SanitizerError):
    """``invalidate()`` called on a block that is still pinned."""


class UnannouncedReadError(SanitizerError):
    """A kernel-span demand miss outside the announced footprint."""


class CrossThreadUnpinError(SanitizerError):
    """A thread released a pin that a different thread took."""


class _SpanSentry:
    """Tracer observer forwarding span boundaries to the pool."""

    __slots__ = ("_pool",)

    def __init__(self, pool: "SanitizingBufferPool") -> None:
        self._pool = pool

    def span_opened(self, name: str, cat: str) -> None:
        self._pool._on_span_open(name, cat)

    def span_closed(self, name: str, cat: str, exc_type) -> None:
        self._pool._on_span_close(name, cat, exc_type)


class _SpanFrame:
    """Per-open-span sanitizer state."""

    __slots__ = ("name", "cat", "pins_before", "announced", "wrote",
                 "announcements")

    def __init__(self, name: str, cat: str,
                 pins_before: dict[int, int]) -> None:
        self.name = name
        self.cat = cat
        self.pins_before = pins_before
        self.announced: set[int] = set()
        self.wrote: set[int] = set()
        self.announcements = 0


class SanitizingBufferPool(BufferPool):
    """A :class:`BufferPool` that enforces the storage protocol.

    Results and I/O accounting are identical to the plain pool — every
    operation delegates to the base class — so the full test suite can
    run sanitized (``REPRO_SANITIZE=1``) with unchanged block counts.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Span stacks are per thread (a worker's spans nest on its own
        # stack); pin ownership is tracked per thread so leaks are
        # attributed to the worker span that took them.
        self._tls = threading.local()
        self._pins_by_thread: dict[int, dict[int, int]] = {}
        self._views: dict[int, list[weakref.ref]] = {}
        self._sentry: _SpanSentry | None = None

    @property
    def _span_stack(self) -> list[_SpanFrame]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _my_pins(self) -> dict[int, int]:
        """The calling thread's pin table (caller holds self.lock)."""
        tid = threading.get_ident()
        table = self._pins_by_thread.get(tid)
        if table is None:
            table = self._pins_by_thread[tid] = {}
        return table

    # ------------------------------------------------------------------
    # Tracer wiring
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Observe span boundaries (works with tracing disabled)."""
        if self._sentry is None:
            self._sentry = _SpanSentry(self)
            tracer.add_observer(self._sentry)

    def _on_span_open(self, name: str, cat: str) -> None:
        with self.lock:
            self._span_stack.append(
                _SpanFrame(name, cat, dict(self._my_pins())))

    def _on_span_close(self, name: str, cat: str, exc_type) -> None:
        if not self._span_stack:
            return
        frame = self._span_stack.pop()
        if exc_type is not None:
            return  # don't mask the in-flight failure
        with self.lock:
            pins = self._my_pins()
            if frame.pins_before != pins:
                leaked = {bid: pins.get(bid, 0)
                          - frame.pins_before.get(bid, 0)
                          for bid in (set(pins)
                                      | set(frame.pins_before))
                          if pins.get(bid, 0)
                          != frame.pins_before.get(bid, 0)}
                raise PinLeakError(
                    f"span {cat}:{name} closed with unbalanced pins "
                    f"(block: delta) {leaked} on this thread; every "
                    f"pin taken inside a span must be released before "
                    f"it closes")

    # ------------------------------------------------------------------
    # Footprint bookkeeping
    # ------------------------------------------------------------------
    def _kernel_frames(self) -> list[_SpanFrame]:
        return [f for f in self._span_stack if f.cat == "kernel"]

    def _check_covered(self, block_id: int) -> None:
        """A demand miss must sit inside the announced footprint."""
        frames = self._kernel_frames()
        if not frames or not any(f.announcements for f in frames):
            return
        for frame in frames:
            if block_id in frame.announced or block_id in frame.wrote:
                return
        frame = frames[-1]
        raise UnannouncedReadError(
            f"kernel span {frame.name!r} missed on block {block_id} "
            f"which it neither announced via prefetch() nor wrote via "
            f"put(); announce the full read footprint before reading "
            f"it so misses coalesce")

    def prefetch(self, block_ids: list[int]) -> int:
        frames = self._kernel_frames()
        if frames:
            frames[-1].announcements += 1
            frames[-1].announced.update(block_ids)
        return super().prefetch(block_ids)

    def put(self, block_id: int, data: np.ndarray) -> None:
        frames = self._kernel_frames()
        if frames:
            frames[-1].wrote.add(block_id)
        super().put(block_id, data)

    def get(self, block_id: int, *, for_write: bool = False
            ) -> np.ndarray:
        if block_id not in self._frames:
            self._check_covered(block_id)
        return super().get(block_id, for_write=for_write)

    def get_many(self, block_ids: list[int]) -> list[np.ndarray]:
        for bid in block_ids:
            if bid not in self._frames:
                self._check_covered(bid)
        return super().get_many(block_ids)

    # ------------------------------------------------------------------
    # Pin / view hazards
    # ------------------------------------------------------------------
    def block_view(self, block_id: int) -> np.ndarray:
        """Zero-copy device view, tracked against the block's pin.

        Sanitized code must take views through the pool: the view is
        only valid while the block stays pinned, and releasing the last
        pin while a view is alive raises :class:`UseAfterUnpinError`.
        """
        with self.lock:
            if self._pinned.get(block_id, 0) <= 0:
                raise UseAfterUnpinError(
                    f"block_view({block_id}) taken without a pin; pin "
                    f"the block first so the view cannot dangle")
            if hasattr(self.device, "block_view"):
                view = self.device.block_view(block_id)
            else:
                # The memory simulator has no zero-copy mapping; hand
                # out a read-only view of the cached frame so the
                # pin/view hazard discipline is enforced identically
                # on every backend.
                view = super().get(block_id).view()
                view.flags.writeable = False
            self._views.setdefault(block_id, []).append(
                weakref.ref(view))
            return view

    def pin(self, block_id: int) -> None:
        with self.lock:
            super().pin(block_id)
            mine = self._my_pins()
            mine[block_id] = mine.get(block_id, 0) + 1

    def unpin(self, block_id: int) -> None:
        with self.lock:
            mine = self._my_pins()
            if (mine.get(block_id, 0) <= 0
                    and self._pinned.get(block_id, 0) > 0):
                holders = sorted(
                    tid for tid, table in self._pins_by_thread.items()
                    if table.get(block_id, 0) > 0)
                raise CrossThreadUnpinError(
                    f"thread {threading.get_ident()} unpinned block "
                    f"{block_id} which it never pinned (held by "
                    f"thread(s) {holders}); pins must be released by "
                    f"the thread that took them")
            dropping_last = self._pinned.get(block_id, 0) <= 1
            if dropping_last and block_id in self._views:
                live = [ref for ref in self._views[block_id]
                        if ref() is not None]
                if live:
                    raise UseAfterUnpinError(
                        f"unpinning block {block_id} to zero while "
                        f"{len(live)} zero-copy view(s) of it are "
                        f"still alive; drop the view(s) before "
                        f"releasing the pin")
                del self._views[block_id]
            super().unpin(block_id)
            if mine.get(block_id, 0) > 0:
                if mine[block_id] == 1:
                    del mine[block_id]
                else:
                    mine[block_id] -= 1

    def invalidate(self, block_id: int) -> None:
        with self.lock:
            if self._pinned.get(block_id, 0) > 0:
                raise PinnedDiscardError(
                    f"invalidate({block_id}) would discard a block "
                    f"pinned {self._pinned[block_id]} time(s); unpin "
                    f"before dropping it")
            self._views.pop(block_id, None)
            super().invalidate(block_id)
