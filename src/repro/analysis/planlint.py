"""Static plan verification: reject infeasible plans before they run.

The kernels each defend their own preconditions deep inside execution
(``square_tile_matmul`` raises when the budget cannot hold three panel
submatrices, ``lu_decompose`` when a tall panel does not fit, ``spgemm``
when k-grids misalign...).  Those guards fire mid-plan, after earlier
operators have already burned I/O.  :func:`verify_plan` lifts them —
plus shape conformability, kernel-pin legality, epilogue-fusion
legality and prediction sanity — into one pre-execution walk over the
:class:`~repro.core.plan.PhysicalPlan`, with every error naming the
offending operator.

Wired into :meth:`repro.core.evaluator.Evaluator.execute` and
``session.explain()`` under ``OptimizerConfig(strict=True)``; the
golden-plan tests run it over every plan they snapshot.
"""

from __future__ import annotations

import math

from repro.core.costs import COST_MODELS
from repro.core.expr import (Crossprod, Map, MatMul, Node, Solve)
from repro.core.plan import (BnljOp, CrossprodOp, FusedEpilogueOp,
                             InverseOp, LUSolveOp, MapOp, PhysOp,
                             PhysicalPlan, SparseSpGEMMOp,
                             SparseSpMMOp, TileMatMulOp, TransposeOp)


class PlanVerificationError(ValueError):
    """A physical plan failed static verification; the message names
    the offending operator (``op.label()``) and the violated check."""


def _fail(op: PhysOp, message: str) -> None:
    raise PlanVerificationError(f"{op.label()}: {message}")


def _effective_shapes(node: MatMul) -> tuple[tuple[int, int],
                                             tuple[int, int]]:
    a, b = node.children
    sa = a.shape[::-1] if node.trans_a else a.shape
    sb = b.shape[::-1] if node.trans_b else b.shape
    return sa, sb


def _check_square_budget(op: PhysOp, operand: Node, panels: int,
                         memory_scalars: int, block_scalars: int,
                         what: str) -> None:
    """The Appendix-A feasibility check of ``_square_panel``, lifted.

    Mirrors the kernel's ragged fallback: below ``panels`` whole tiles
    the panel shrinks (unaligned) instead of failing, so the only
    infeasible budget is one that cannot hold ``panels`` scalars.
    """
    if memory_scalars < panels:
        _fail(op, f"memory budget of {memory_scalars} scalars cannot "
                  f"hold {panels} 1 x 1 submatrices for {what} "
                  f"(needs >= {panels} scalars)")


def _sparse_stored(node: Node) -> bool:
    from repro.core.passes import sparse_stored
    return sparse_stored(node)


def _verify_op(op: PhysOp, memory_scalars: int,
               block_scalars: int) -> None:
    # -- prediction sanity (every operator) ----------------------------
    io = op.predicted_io
    if not math.isfinite(io):
        _fail(op, f"predicted_io is not finite ({io!r})")
    if io < 0:
        _fail(op, f"predicted_io is negative ({io!r})")
    if op.cost_model is not None and op.cost_model not in COST_MODELS:
        _fail(op, f"cost model {op.cost_model!r} is not registered in "
                  f"core.costs.COST_MODELS")

    node = op.node

    # -- dense products ------------------------------------------------
    if isinstance(op, (TileMatMulOp, BnljOp)):
        if not isinstance(node, MatMul):
            _fail(op, f"expects a MatMul node, got "
                      f"{type(node).__name__}")
        sa, sb = _effective_shapes(node)
        if sa[1] != sb[0]:
            _fail(op, f"non-conformable operands: {sa} x {sb}")
        if node.shape != (sa[0], sb[1]):
            _fail(op, f"output shape {node.shape} != {(sa[0], sb[1])} "
                      f"implied by its operands")
        if node.kernel == "sparse" and _sparse_stored(node.children[0]):
            _fail(op, "node is pinned kernel='sparse' with a "
                      "sparse-stored operand but lowered to a dense "
                      "kernel")
        if isinstance(op, BnljOp):
            need = sa[1] + sb[1]
            if memory_scalars < need:
                _fail(op, f"memory budget of {memory_scalars} scalars "
                          f"cannot hold one A row plus one result row "
                          f"(n2 + n3 = {need} scalars); the BNLJ "
                          f"schedule would overrun the pool")
        else:
            _check_square_budget(op, node.children[0], 3,
                                 memory_scalars, block_scalars,
                                 "square_tile_matmul")
        return

    if isinstance(op, CrossprodOp):
        if not isinstance(node, Crossprod):
            _fail(op, f"expects a Crossprod node, got "
                      f"{type(node).__name__}")
        a = node.children[0]
        inner, k = a.shape if node.t_first else a.shape[::-1]
        if node.shape != (k, k):
            _fail(op, f"output shape {node.shape} != {(k, k)} implied "
                      f"by its operand")
        _check_square_budget(op, a, 3, memory_scalars, block_scalars,
                             "crossprod_matmul")
        return

    # -- sparse products (kernel-pin legality) -------------------------
    if isinstance(op, (SparseSpMMOp, SparseSpGEMMOp)):
        if not isinstance(node, MatMul):
            _fail(op, f"expects a MatMul node, got "
                      f"{type(node).__name__}")
        sa, sb = _effective_shapes(node)
        if sa[1] != sb[0]:
            _fail(op, f"non-conformable operands: {sa} x {sb}")
        if node.kernel == "dense":
            _fail(op, "node is pinned kernel='dense' but lowered to a "
                      "sparse kernel")
        a, b = node.children
        if not _sparse_stored(a):
            _fail(op, "left operand is not sparse-stored; the sparse "
                      "kernels require a stored SparseTiledMatrix")
        if isinstance(op, SparseSpGEMMOp):
            if not _sparse_stored(b):
                _fail(op, "spgemm requires both operands "
                          "sparse-stored; right operand is not")
            ta = getattr(getattr(a, "data", None), "tile_shape", None)
            tb = getattr(getattr(b, "data", None), "tile_shape", None)
            if ta and tb and ta[1] != tb[0]:
                _fail(op, f"k-grids must align: A tiles {ta} vs "
                          f"B tiles {tb}")
        return

    # -- LU-based operators --------------------------------------------
    if isinstance(op, (LUSolveOp, InverseOp)):
        a = node.children[0]
        if a.shape[0] != a.shape[1]:
            _fail(op, f"LU requires a square matrix, got {a.shape}")
        if isinstance(node, Solve):
            b = node.children[1]
            if b.shape[0] != a.shape[0]:
                _fail(op, f"right-hand side has {b.shape[0]} rows for "
                          f"a {a.shape[0]} x {a.shape[1]} system")
        n = a.shape[0]
        tile_w = min(n, max(1, math.isqrt(max(1, block_scalars))))
        need = 3 * n * tile_w
        if memory_scalars < need:
            _fail(op, f"memory budget of {memory_scalars} scalars "
                      f"cannot hold a tall LU panel of {n} x {tile_w} "
                      f"(needs >= {need} scalars)")
        return

    # -- transpose materialization -------------------------------------
    if isinstance(op, TransposeOp):
        child = node.children[0]
        if node.shape != child.shape[::-1]:
            _fail(op, f"output shape {node.shape} != transpose of "
                      f"operand shape {child.shape}")
        return

    # -- fused epilogues -----------------------------------------------
    if isinstance(op, FusedEpilogueOp):
        from repro.core.planner import (_barrier_fusable,
                                        classify_epilogue_region)
        barrier = op.barrier
        if not _barrier_fusable(barrier):
            _fail(op, "barrier is not fusable with a dense epilogue "
                      "(sparse-pinned or sparse-dispatched product)")
        if barrier.shape != node.shape:
            _fail(op, f"barrier shape {barrier.shape} != fused region "
                      f"shape {node.shape}")
        for mat in op.matrix_nodes:
            if mat.shape != node.shape:
                _fail(op, f"epilogue matrix input shape {mat.shape} "
                          f"!= region shape {node.shape}")
        if isinstance(node, Map):
            region = classify_epilogue_region(
                node,
                lambda n: not isinstance(n, (Map, MatMul, Crossprod)))
            if region is None:
                _fail(op, "region contains nodes the per-submatrix "
                          "epilogue evaluator cannot stream")
        panels = 3 + len(op.matrix_nodes)
        operand = (barrier.children[0]
                   if isinstance(barrier, (Crossprod, MatMul))
                   else node)
        _check_square_budget(op, operand, panels, memory_scalars,
                             block_scalars, "the fused epilogue")
        return

    # -- elementwise matrix regions ------------------------------------
    if isinstance(op, MapOp) and node.ndim == 2:
        for child in node.children:
            if child.ndim == 2 and child.shape != node.shape:
                _fail(op, f"elementwise input shape {child.shape} != "
                          f"region shape {node.shape}")
        return


def verify_plan(plan: PhysicalPlan, config=None, *,
                memory_scalars: int | None = None,
                block_scalars: int | None = None) -> None:
    """Statically verify a physical plan against a storage budget.

    ``config`` is a :class:`~repro.storage.config.StorageConfig` (the
    budget source); alternatively pass ``memory_scalars`` /
    ``block_scalars`` directly.  Raises
    :class:`PlanVerificationError` naming the first offending operator;
    returns ``None`` on a verified plan.
    """
    if memory_scalars is None:
        if config is None:
            raise TypeError(
                "verify_plan needs a StorageConfig or explicit "
                "memory_scalars/block_scalars")
        memory_scalars = config.memory_bytes // config.itemsize
    if block_scalars is None:
        block_scalars = (config.block_size // config.itemsize
                         if config is not None else 1024)
    for op in plan.ops():
        _verify_op(op, memory_scalars, block_scalars)
