"""Repo-specific AST lint rules (the ``RPRnnn`` family).

RIOT's I/O guarantees only hold when every layer obeys a handful of
conventions that generic linters cannot see: devices are built in one
factory, every physical operator names a registered cost model, tracer
spans always close, and plan costing is deterministic.  This module
checks those conventions on the Python AST — real parse trees, so a
mention in a comment or docstring never trips a rule (the failure mode
of the grep test this replaces).

Rules:

``RPR001``
    No ``BlockDevice`` / ``FileBlockDevice`` / ``PageFile``
    construction outside ``repro/storage``.
    :func:`repro.storage.config.create_device` is the single device
    factory; building a device anywhere else bypasses the injected
    :class:`~repro.storage.config.StorageConfig` and breaks backend
    swapping.
``RPR002``
    Every ``PhysOp`` subclass the planner constructs must name a cost
    model registered in ``repro.core.costs.COST_MODELS`` (directly via
    its class-level ``cost_model`` or via a per-instance override).
    An unregistered name silently drops the operator from calibration
    grouping and from the plan verifier's model check.
``RPR003``
    Tracer spans must be opened as ``with tracer.span(...)``.  A span
    entered any other way is not guaranteed to close, which corrupts
    the tracer's open-span stack and mis-attributes every later I/O
    delta.
``RPR004``
    No wall-clock or randomness calls (``time.*``, ``random.*``,
    ``numpy.random``, ``datetime.now``) inside cost models or optimizer
    passes: plans must be deterministic functions of the DAG and the
    config, or golden-plan tests and cross-run calibration are
    meaningless.
``RPR005``
    No ``encode_tile()`` / ``decode_tile()`` calls outside
    ``repro/storage``.  Tile codecs are a storage-internal protocol:
    the tile store applies them at write/read time and charges
    ``IOStats.bytes_logical`` / ``bytes_compressed`` as it does so.  A
    kernel or pass calling a codec directly would move bytes that the
    I/O accounting never sees, breaking the compression-ratio
    calibration loop.

Use :func:`run_lint` programmatically or ``python -m repro.analysis``
from the command line.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path

ALL_RULES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")

#: Constructors only ``repro/storage`` may call (RPR001).
DEVICE_CONSTRUCTORS = frozenset(
    {"BlockDevice", "FileBlockDevice", "PageFile"})

#: Codec protocol methods only ``repro/storage`` may call (RPR005).
CODEC_METHODS = frozenset({"encode_tile", "decode_tile"})

#: Modules whose call results depend on wall clock or RNG state
#: (RPR004).  Matched against the root name of attribute chains.
NONDETERMINISTIC_ROOTS = frozenset({"time", "random", "datetime"})

#: Names that are nondeterministic when imported bare
#: (``from time import perf_counter`` etc.).
NONDETERMINISTIC_IMPORTS = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "time_ns", "process_time", "random", "randint", "uniform",
    "shuffle", "choice", "sample", "gauss", "randrange",
})


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")


def _attr_chain(func: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a name chain."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _call_name(func: ast.expr) -> str | None:
    """Terminal callable name of ``f(...)`` / ``mod.f(...)``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_storage_file(path: Path) -> bool:
    return "storage" in path.parts


# ----------------------------------------------------------------------
# RPR001 — device constructors stay inside repro/storage
# ----------------------------------------------------------------------
def _check_device_construction(path: Path, tree: ast.AST
                               ) -> list[Finding]:
    if _is_storage_file(path):
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in DEVICE_CONSTRUCTORS:
                findings.append(Finding(
                    str(path), node.lineno, node.col_offset, "RPR001",
                    f"{name}() constructed outside repro/storage; "
                    f"use storage.config.create_device() / the "
                    f"ArrayStore factories"))
    return findings


# ----------------------------------------------------------------------
# RPR005 — codec encode/decode stays inside repro/storage
# ----------------------------------------------------------------------
def _check_codec_discipline(path: Path, tree: ast.AST) -> list[Finding]:
    if _is_storage_file(path):
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in CODEC_METHODS:
                findings.append(Finding(
                    str(path), node.lineno, node.col_offset, "RPR005",
                    f"{name}() called outside repro/storage; tile "
                    f"codecs are applied by the tile store so the "
                    f"compressed bytes are charged to IOStats"))
    return findings


# ----------------------------------------------------------------------
# RPR002 — planner-constructed PhysOps name registered cost models
# ----------------------------------------------------------------------
def _registered_cost_models(costs_path: Path) -> set[str] | None:
    """Keys of the ``COST_MODELS`` dict literal in ``core/costs.py``."""
    try:
        tree = ast.parse(costs_path.read_text())
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name)
                        and t.id == "COST_MODELS"
                        for t in node.targets)
                and isinstance(node.value, ast.Dict)):
            keys = set()
            for key in node.value.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    keys.add(key.value)
            return keys
    return None


def _physop_cost_models(plan_path: Path) -> dict[str, str | None] | None:
    """Map class name -> class-level ``cost_model`` in ``plan.py``."""
    try:
        tree = ast.parse(plan_path.read_text())
    except (OSError, SyntaxError):
        return None
    models: dict[str, str | None] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model: str | None = None
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for t in targets:
                if (isinstance(t, ast.Name) and t.id == "cost_model"
                        and isinstance(value, ast.Constant)):
                    model = value.value
        models[node.name] = model
    # Subclasses inherit: resolve one level of bases by name.
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and models.get(node.name) is None:
            for base in node.bases:
                base_name = (base.id if isinstance(base, ast.Name)
                             else None)
                if base_name in models and models[base_name]:
                    models[node.name] = models[base_name]
    return models


def _check_cost_model_registry(path: Path, tree: ast.AST
                               ) -> list[Finding]:
    if path.name != "planner.py":
        return []
    registry = _registered_cost_models(path.parent / "costs.py")
    class_models = _physop_cost_models(path.parent / "plan.py")
    if registry is None or class_models is None:
        return []  # context files missing: rule not applicable
    findings = []
    for node in ast.walk(tree):
        # Constructed operator classes: the class attr must be
        # registered (or None, for leaves/constants).
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in class_models and name.endswith("Op"):
                model = class_models[name]
                if model is not None and model not in registry:
                    findings.append(Finding(
                        str(path), node.lineno, node.col_offset,
                        "RPR002",
                        f"{name} names cost model {model!r} which is "
                        f"not registered in core.costs.COST_MODELS"))
    # Per-instance overrides: ``op.cost_model = "..."`` (directly or
    # through a string variable assigned in this file).
    consts: dict[str, str] = {}
    for sub in ast.walk(tree):
        if not isinstance(sub, ast.Assign):
            continue
        value = sub.value
        if (isinstance(value, ast.Constant)
                and isinstance(value.value, str)):
            for t in sub.targets:
                if isinstance(t, ast.Name):
                    consts[t.id] = value.value
    for sub in ast.walk(tree):
        if not isinstance(sub, ast.Assign):
            continue
        for t in sub.targets:
            if not (isinstance(t, ast.Attribute)
                    and t.attr == "cost_model"):
                continue
            value = sub.value
            resolved: str | None = None
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                resolved = value.value
            elif (isinstance(value, ast.Name)
                    and value.id in consts):
                resolved = consts[value.id]
            if resolved is not None and resolved not in registry:
                findings.append(Finding(
                    str(path), sub.lineno, sub.col_offset,
                    "RPR002",
                    f"cost_model override {resolved!r} is not "
                    f"registered in core.costs.COST_MODELS"))
    return findings


# ----------------------------------------------------------------------
# RPR003 — spans open via ``with tracer.span(...)``
# ----------------------------------------------------------------------
def _check_span_discipline(path: Path, tree: ast.AST) -> list[Finding]:
    # The tracer module itself builds and returns span objects.
    if path.name == "tracer.py":
        return []
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                guarded.add(id(item.context_expr))
    findings = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in guarded):
            findings.append(Finding(
                str(path), node.lineno, node.col_offset, "RPR003",
                "tracer span opened outside a with-statement; use "
                "'with tracer.span(...)' so the span is guaranteed "
                "to close"))
    return findings


# ----------------------------------------------------------------------
# RPR004 — no wall clock / RNG in cost models or passes
# ----------------------------------------------------------------------
def _deterministic_scope(path: Path) -> bool:
    """Does RPR004 apply to this file?"""
    if path.name in ("costs.py", "planner.py", "chain.py"):
        return True
    return "passes" in path.parts


def _check_determinism(path: Path, tree: ast.AST) -> list[Finding]:
    if not _deterministic_scope(path):
        return []
    # Track bare names imported from nondeterministic modules.
    tainted: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom)
                and node.module in NONDETERMINISTIC_ROOTS):
            for alias in node.names:
                if alias.name in NONDETERMINISTIC_IMPORTS:
                    tainted.add(alias.asname or alias.name)
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        hit = None
        if chain and chain[0] in NONDETERMINISTIC_ROOTS:
            hit = ".".join(chain)
        elif (len(chain) >= 2 and chain[0] in ("np", "numpy")
                and "random" in chain[1:]):
            hit = ".".join(chain)
        elif (isinstance(node.func, ast.Name)
                and node.func.id in tainted):
            hit = node.func.id
        if hit is not None:
            findings.append(Finding(
                str(path), node.lineno, node.col_offset, "RPR004",
                f"nondeterministic call {hit}() inside a cost model / "
                f"optimizer pass; plans must be pure functions of the "
                f"DAG and config"))
    return findings


_RULES = {
    "RPR001": _check_device_construction,
    "RPR002": _check_cost_model_registry,
    "RPR003": _check_span_discipline,
    "RPR004": _check_determinism,
    "RPR005": _check_codec_discipline,
}


def lint_file(path: Path, select: set[str] | None = None
              ) -> list[Finding]:
    """Lint one Python file; returns findings (possibly empty)."""
    try:
        source = path.read_text()
    except OSError as err:
        return [Finding(str(path), 1, 0, "RPR000",
                        f"cannot read file: {err}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return [Finding(str(path), err.lineno or 1,
                        (err.offset or 1) - 1, "RPR000",
                        f"syntax error: {err.msg}")]
    findings: list[Finding] = []
    for code, rule in _RULES.items():
        if select is None or code in select:
            findings.extend(rule(path, tree))
    return findings


def iter_python_files(paths: list[str | os.PathLike]):
    """Yield every ``.py`` file under the given files/directories."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def run_lint(paths: list[str | os.PathLike],
             select: set[str] | None = None) -> list[Finding]:
    """Lint files/trees; findings sorted by (path, line, col, code)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
