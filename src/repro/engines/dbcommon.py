"""Shared machinery for the three database-backed engines (§4).

A ``dbvector`` maps to a table ``(I, V)`` with primary key ``I``; a
``dbmatrix`` maps to ``(I, J, V)`` keyed on ``(I, J)``; 1-based indexes
match R and the paper's SQL.  Every R operation builds a logical plan over
its operands, and the policy knobs distinguish the Figure-1 variants:

============================  =====================  ====================
engine                        unnamed results        named objects
============================  =====================  ====================
RIOT-DB/Strawman              materialized tables    (already tables)
RIOT-DB/MatNamed              views                  materialized tables
RIOT-DB (full)                views                  views
============================  =====================  ====================

View lifetime follows Python references: each wrapper keeps its operand
wrappers alive (``deps``), which is the dependency tracking the paper had to
hook R assignments for (footnote 2 of §4.1).

Metadata (length, shape, logical-ness) travels on the wrapper, never
touching the database — which is why ``length(x)`` is free and
``sample(length(x), 100)`` costs no I/O.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.db import (Col, Const, Database, Filter, Func, GroupAgg, Join,
                      Limit, Project, Scan, Schema, Sort)
from repro.db import sqlexpr as sx
from repro.rlang.generics import Generics
from repro.rlang.values import MissingIndex, RError, RScalar
from repro.storage import IOStats, SimClock

from .base import Engine

#: Safety cap for operations that must pull an index vector into memory.
MAX_SCATTER_INDEXES = 1 << 20

VEC_SCHEMA = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))
MAT_SCHEMA = Schema.of(("I", "INT"), ("J", "INT"), ("V", "DOUBLE"),
                       primary_key=("I", "J"))


class DBVec:
    """Handle to a vector stored as a table or defined by a view."""

    def __init__(self, engine: "DBEngineBase", name: str, length: int,
                 kind: str, logical: bool = False, deps: tuple = ()) -> None:
        self.engine = engine
        self.name = name
        self.length = int(length)
        self.kind = kind          # "table" | "view"
        self.logical = logical
        self.deps = tuple(deps)   # keep operand views alive

    def __del__(self) -> None:
        with contextlib.suppress(Exception):
            self.engine._release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DBVec({self.name}, n={self.length}, kind={self.kind}"
                f"{', logical' if self.logical else ''})")


class DBMat:
    """Handle to a matrix stored as a table or defined by a view."""

    def __init__(self, engine: "DBEngineBase", name: str,
                 shape: tuple[int, int], kind: str,
                 deps: tuple = ()) -> None:
        self.engine = engine
        self.name = name
        self.shape = (int(shape[0]), int(shape[1]))
        self.kind = kind
        self.deps = tuple(deps)

    def __del__(self) -> None:
        with contextlib.suppress(Exception):
            self.engine._release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DBMat({self.name}, shape={self.shape}, kind={self.kind})"


def _v(alias: str) -> Col:
    return Col(f"{alias}.V")


def _truthy(expr) -> sx.Expr:
    """SQL expression testing a stored 0/1 logical column."""
    return sx.Cmp("<>", expr, Const(0))


class DBEngineBase(Engine):
    """Common implementation of the three RIOT-DB variants."""

    name = "RIOT-DB base"
    #: Strawman: run and store every single operation immediately.
    EAGER_MATERIALIZE = False
    #: MatNamed: force evaluation whenever a result is bound to a name.
    MATERIALIZE_ON_ASSIGN = False

    def __init__(self, memory_bytes: int = 68 * 1024 * 1024,
                 block_size: int = 8192, storage=None) -> None:
        Engine.__init__(self)
        if storage is None:
            self.db = Database(memory_bytes=memory_bytes,
                               block_size=block_size, name=self.name)
        else:
            self.db = Database(storage=storage, name=self.name)
        self.generics = Generics()
        self._counter = 0
        self._register_all()

    # ------------------------------------------------------------------
    # Naming / lifetime
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _release(self, obj) -> None:
        catalog = self.db.catalog
        if obj.kind == "view" and catalog.is_view(obj.name):
            catalog.drop(obj.name)
        elif obj.kind == "table" and catalog.is_table(obj.name):
            catalog.drop(obj.name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def make_vector(self, data: np.ndarray, logical: bool = False) -> DBVec:
        values = np.asarray(data, dtype=np.float64).ravel()
        name = self._fresh("T")
        self.db.load_table(name, VEC_SCHEMA, {
            "I": np.arange(1, values.size + 1, dtype=np.int64),
            "V": values,
        })
        return DBVec(self, name, values.size, "table", logical=logical)

    def make_matrix(self, data: np.ndarray) -> DBMat:
        values = np.asarray(data, dtype=np.float64)
        n1, n2 = values.shape
        ii, jj = np.meshgrid(np.arange(1, n1 + 1), np.arange(1, n2 + 1),
                             indexing="ij")
        name = self._fresh("M")
        self.db.load_table(name, MAT_SCHEMA, {
            "I": ii.ravel().astype(np.int64),
            "J": jj.ravel().astype(np.int64),
            "V": values.ravel(),
        })
        return DBMat(self, name, (n1, n2), "table")

    # ------------------------------------------------------------------
    # Result-object policy (the Figure-1 variants differ only here)
    # ------------------------------------------------------------------
    def _new_vector(self, plan, length: int, logical: bool,
                    deps: tuple) -> DBVec:
        if self.EAGER_MATERIALIZE:
            name = self._fresh("T")
            self.db.materialize(plan, name, build_index=True,
                                primary_key=("I",))
            return DBVec(self, name, length, "table", logical=logical)
        name = self._fresh("V")
        self.db.create_view(name, plan)
        return DBVec(self, name, length, "view", logical=logical,
                     deps=deps)

    def _new_matrix(self, plan, shape: tuple[int, int],
                    deps: tuple) -> DBMat:
        if self.EAGER_MATERIALIZE:
            name = self._fresh("M")
            self.db.materialize(plan, name, build_index=True,
                                primary_key=("I", "J"))
            return DBMat(self, name, shape, "table")
        name = self._fresh("W")
        self.db.create_view(name, plan)
        return DBMat(self, name, shape, "view", deps=deps)

    def force_vector(self, vec: DBVec) -> DBVec:
        """Materialize a view-backed vector into an indexed table."""
        if vec.kind == "table":
            return vec
        name = self._fresh("T")
        self.db.materialize(Scan(vec.name), name, build_index=True,
                            primary_key=("I",))
        return DBVec(self, name, vec.length, "table", logical=vec.logical)

    def force_matrix(self, mat: DBMat) -> DBMat:
        if mat.kind == "table":
            return mat
        name = self._fresh("M")
        plan = Sort(Scan(mat.name), [f"{mat.name}.I", f"{mat.name}.J"])
        self.db.materialize(plan, name, build_index=True,
                            primary_key=("I", "J"))
        return DBMat(self, name, mat.shape, "table")

    def on_assign(self, name: str, value, old):
        """Interpreter assignment hook (the paper's one R-core change)."""
        if self.MATERIALIZE_ON_ASSIGN:
            if isinstance(value, DBVec) and value.kind == "view":
                return self.force_vector(value)
            if isinstance(value, DBMat) and value.kind == "view":
                return self.force_matrix(value)
        return value

    # ------------------------------------------------------------------
    # Plan-building helpers
    # ------------------------------------------------------------------
    def _vec_vec_plan(self, a: DBVec, b: DBVec, expr_fn):
        """SELECT E1.I, f(E1.V, E2.V) FROM A E1, B E2 WHERE E1.I = E2.I."""
        if a.length != b.length:
            raise RError(
                f"non-conformable vectors: {a.length} vs {b.length}")
        plan = Join(Scan(a.name, "E1"), Scan(b.name, "E2"),
                    ["E1.I"], ["E2.I"])
        return Project(plan, [("I", Col("E1.I")),
                              ("V", expr_fn(_v("E1"), _v("E2")))])

    def _vec_scalar_plan(self, a: DBVec, expr_fn):
        return Project(Scan(a.name, "E1"),
                       [("I", Col("E1.I")), ("V", expr_fn(_v("E1")))])

    def _mat_mat_plan(self, a: DBMat, b: DBMat, expr_fn):
        if a.shape != b.shape:
            raise RError(
                f"non-conformable matrices: {a.shape} vs {b.shape}")
        plan = Join(Scan(a.name, "E1"), Scan(b.name, "E2"),
                    ["E1.I", "E1.J"], ["E2.I", "E2.J"])
        return Project(plan, [("I", Col("E1.I")), ("J", Col("E1.J")),
                              ("V", expr_fn(_v("E1"), _v("E2")))])

    def _mat_scalar_plan(self, a: DBMat, expr_fn):
        return Project(Scan(a.name, "E1"),
                       [("I", Col("E1.I")), ("J", Col("E1.J")),
                        ("V", expr_fn(_v("E1")))])

    # -- SQL expression constructors per R operator -----------------------
    _ARITH = {"+": "+", "-": "-", "*": "*", "/": "/", "%%": "%"}
    _CMP = {"==": "=", "!=": "<>", "<": "<", ">": ">",
            "<=": "<=", ">=": ">="}

    def _scalar_expr(self, op: str, swap: bool, const: float):
        def expr_fn(v):
            c = Const(const)
            left, right = (c, v) if swap else (v, c)
            return self._combine(op, left, right)
        return expr_fn

    def _combine(self, op: str, left, right):
        if op in self._ARITH:
            return sx.Arith(self._ARITH[op], left, right)
        if op == "^":
            return Func("POW", left, right)
        if op in self._CMP:
            return sx.Cmp(self._CMP[op], left, right)
        if op == "&":
            return sx.And(_truthy(left), _truthy(right))
        if op == "|":
            return sx.Or(_truthy(left), _truthy(right))
        raise RError(f"unsupported operator {op!r}")

    _LOGICAL_OPS = frozenset(
        ["==", "!=", "<", ">", "<=", ">=", "&", "|"])

    # ------------------------------------------------------------------
    # Query execution helpers
    # ------------------------------------------------------------------
    def _collect(self, plan) -> dict[str, np.ndarray]:
        return self.db.query(plan)

    def vector_values(self, vec: DBVec) -> np.ndarray:
        """Pull a whole vector into memory, ordered by I (forces it)."""
        out = self._collect(self._ordered_scan(vec))
        icol, vcol = self._iv_names(out)
        order = np.argsort(out[icol], kind="stable")
        return np.asarray(out[vcol])[order]

    def matrix_values(self, mat: DBMat) -> np.ndarray:
        out = self._collect(Scan(mat.name))
        names = {n.split(".")[-1]: n for n in out}
        data = np.zeros(mat.shape)
        ii = np.asarray(out[names["I"]], dtype=np.int64) - 1
        jj = np.asarray(out[names["J"]], dtype=np.int64) - 1
        data[ii, jj] = out[names["V"]]
        return data

    @staticmethod
    def _iv_names(batch) -> tuple[str, str]:
        names = {n.split(".")[-1]: n for n in batch}
        return names["I"], names["V"]

    def _ordered_scan(self, vec: DBVec):
        return Scan(vec.name)

    # ------------------------------------------------------------------
    # Generic registration
    # ------------------------------------------------------------------
    def _register_all(self) -> None:
        g = self.generics
        for op in list(self._ARITH) + ["^"] + list(self._CMP) + ["&", "|"]:
            g.set_method(op, (DBVec, DBVec), self._make_vv(op))
            g.set_method(op, (DBVec, RScalar), self._make_vs(op, False))
            g.set_method(op, (RScalar, DBVec), self._make_vs(op, True))
            g.set_method(op, (DBMat, DBMat), self._make_mm(op))
            g.set_method(op, (DBMat, RScalar), self._make_ms(op, False))
            g.set_method(op, (RScalar, DBMat), self._make_ms(op, True))
        for name, func in [("sqrt", "SQRT"), ("abs", "ABS"),
                           ("exp", "EXP"), ("log", "LN"),
                           ("floor", "FLOOR"), ("ceiling", "CEIL")]:
            g.set_method(name, (DBVec,), self._make_unary_vec(func))
            g.set_method(name, (DBMat,), self._make_unary_mat(func))
        g.set_method("unary-", (DBVec,), self._make_unary_vec("NEG"))
        g.set_method("unary-", (DBMat,), self._make_unary_mat("NEG"))
        g.set_method("unary!", (DBVec,), self._logical_not)
        for red in ("sum", "mean", "min", "max"):
            g.set_method(red, (DBVec,), self._make_reduction(red))
            g.set_method(red, (DBMat,), self._make_reduction(red))
        g.set_method("all", (DBVec,), self._all)
        g.set_method("any", (DBVec,), self._any)
        g.set_method("length", (DBVec,),
                     lambda v: RScalar(v.length))
        g.set_method("length", (DBMat,),
                     lambda m: RScalar(m.shape[0] * m.shape[1]))
        g.set_method("dim", (DBMat,), self._dim)
        g.set_method("range", (RScalar, RScalar), self._range)
        g.set_method("concat", (object,), self._concat)
        g.set_method("concat", (object, object), self._concat)
        g.set_method("concat", (object, object, object), self._concat)
        g.set_method("[", (DBVec, object), self._vector_index)
        g.set_method("[", (DBMat, object, object), self._matrix_index)
        g.set_method("[<-", (DBVec, object, object), self._vector_assign)
        g.set_method("%*%", (DBMat, DBMat), self._matmul)
        g.set_method("t", (DBMat,), self._transpose)
        g.set_method("reshape", (DBVec, RScalar, RScalar), self._reshape)
        g.set_method("print", (DBVec,), self._print_vector)
        g.set_method("print", (DBMat,), self._print_matrix)
        g.set_method("iterate", (DBVec,),
                     lambda v: self.vector_values(v).tolist())
        g.set_method("first", (DBVec,), self._first)
        g.set_method("which", (DBVec,), self._which)
        g.set_method("head", (DBVec, RScalar), self._head)

    # -- operator factories -------------------------------------------------
    def _make_vv(self, op: str):
        def call(a: DBVec, b: DBVec) -> DBVec:
            plan = self._vec_vec_plan(
                a, b, lambda l, r: self._combine(op, l, r))
            return self._new_vector(plan, a.length,
                                    op in self._LOGICAL_OPS, (a, b))
        return call

    def _make_vs(self, op: str, swap: bool):
        def call(x, y) -> DBVec:
            vec, scalar = (y, x) if swap else (x, y)
            plan = self._vec_scalar_plan(
                vec, self._scalar_expr(op, swap, scalar.as_float()))
            return self._new_vector(plan, vec.length,
                                    op in self._LOGICAL_OPS, (vec,))
        return call

    def _make_mm(self, op: str):
        def call(a: DBMat, b: DBMat) -> DBMat:
            plan = self._mat_mat_plan(
                a, b, lambda l, r: self._combine(op, l, r))
            return self._new_matrix(plan, a.shape, (a, b))
        return call

    def _make_ms(self, op: str, swap: bool):
        def call(x, y) -> DBMat:
            mat, scalar = (y, x) if swap else (x, y)
            plan = self._mat_scalar_plan(
                mat, self._scalar_expr(op, swap, scalar.as_float()))
            return self._new_matrix(plan, mat.shape, (mat,))
        return call

    def _make_unary_vec(self, func: str):
        def call(a: DBVec) -> DBVec:
            plan = self._vec_scalar_plan(a, lambda v: Func(func, v))
            return self._new_vector(plan, a.length, False, (a,))
        return call

    def _make_unary_mat(self, func: str):
        def call(a: DBMat) -> DBMat:
            plan = self._mat_scalar_plan(a, lambda v: Func(func, v))
            return self._new_matrix(plan, a.shape, (a,))
        return call

    def _logical_not(self, a: DBVec) -> DBVec:
        plan = self._vec_scalar_plan(
            a, lambda v: sx.Cmp("=", v, Const(0)))
        return self._new_vector(plan, a.length, True, (a,))

    def _make_reduction(self, red: str):
        func = {"sum": "SUM", "mean": "AVG",
                "min": "MIN", "max": "MAX"}[red]

        def call(obj) -> RScalar:
            plan = GroupAgg(Scan(obj.name, "E1"), [],
                            [("R", func, _v("E1"))])
            out = self._collect(plan)
            return RScalar(float(out["R"][0]))
        return call

    def _all(self, a: DBVec) -> RScalar:
        plan = GroupAgg(Scan(a.name, "E1"), [],
                        [("R", "MIN", _v("E1"))])
        return RScalar(bool(self._collect(plan)["R"][0] != 0))

    def _any(self, a: DBVec) -> RScalar:
        plan = GroupAgg(Scan(a.name, "E1"), [],
                        [("R", "MAX", _v("E1"))])
        return RScalar(bool(self._collect(plan)["R"][0] != 0))

    def _dim(self, m: DBMat) -> DBVec:
        return self.make_vector(np.asarray(m.shape, dtype=np.float64))

    def _range(self, lo: RScalar, hi: RScalar) -> DBVec:
        a, b = lo.as_int(), hi.as_int()
        step = 1 if b >= a else -1
        return self.make_vector(
            np.arange(a, b + step, step, dtype=np.float64))

    def _concat(self, *parts) -> DBVec:
        arrays = []
        for p in parts:
            if isinstance(p, RScalar):
                arrays.append(np.asarray([p.as_float()]))
            elif isinstance(p, DBVec):
                arrays.append(self.vector_values(p))
            else:
                raise RError(f"cannot concatenate {type(p).__name__}")
        return self.make_vector(np.concatenate(arrays))

    # -- subscripts -----------------------------------------------------------
    def _vector_index(self, x: DBVec, idx) -> "DBVec | RScalar":
        if isinstance(idx, MissingIndex):
            return x
        if isinstance(idx, RScalar):
            plan = Filter(Scan(x.name, "D"),
                          sx.Cmp("=", Col("D.I"), Const(idx.as_int())))
            out = self._collect(plan)
            _, vcol = self._iv_names(out)
            if out[vcol].shape[0] == 0:
                raise RError("subscript out of bounds")
            return RScalar(float(out[vcol][0]))
        if idx.logical:
            # x[mask]: filter + renumber forces (partial) evaluation.
            return self._masked_select(x, idx)
        # x[s]: dereference via join — the paper's Z view verbatim.
        plan = Project(
            Join(Scan(x.name, "D"), Scan(idx.name, "S"),
                 ["D.I"], ["S.V"]),
            [("I", Col("S.I")), ("V", Col("D.V"))])
        return self._new_vector(plan, idx.length, x.logical, (x, idx))

    def _masked_select(self, x: DBVec, mask: DBVec) -> DBVec:
        plan = Project(
            Filter(Join(Scan(x.name, "D"), Scan(mask.name, "M"),
                        ["D.I"], ["M.I"]),
                   _truthy(Col("M.V"))),
            [("I", Col("D.I")), ("V", Col("D.V"))])
        return self._renumber_materialize(plan, logical=x.logical)

    def _renumber_materialize(self, plan, logical: bool) -> DBVec:
        """Run a plan and store its rows with a fresh dense 1..k index."""
        name = self._fresh("T")
        table = self.db.create_table(name, VEC_SCHEMA)
        next_i = 1
        values_seen = 0
        for batch in self.db.execute(plan):
            vcol = [c for c in batch if c.split(".")[-1] == "V"][0]
            vals = batch[vcol]
            k = vals.shape[0]
            table.append_batch({
                "I": np.arange(next_i, next_i + k, dtype=np.int64),
                "V": np.asarray(vals, dtype=np.float64),
            })
            next_i += k
            values_seen += k
        table.finish_append()
        table.clustered_on = ("I",)
        return DBVec(self, name, values_seen, "table", logical=logical)

    def _matrix_index(self, m: DBMat, ri, ci):
        if isinstance(ri, RScalar) and isinstance(ci, RScalar):
            pred = sx.And(
                sx.Cmp("=", Col("E1.I"), Const(ri.as_int())),
                sx.Cmp("=", Col("E1.J"), Const(ci.as_int())))
            out = self._collect(Filter(Scan(m.name, "E1"), pred))
            names = {n.split(".")[-1]: n for n in out}
            if out[names["V"]].shape[0] == 0:
                raise RError("subscript out of bounds")
            return RScalar(float(out[names["V"]][0]))
        # Row or column extraction as a vector.
        if isinstance(ri, RScalar) and isinstance(ci, MissingIndex):
            plan = Project(
                Filter(Scan(m.name, "E1"),
                       sx.Cmp("=", Col("E1.I"), Const(ri.as_int()))),
                [("I", Col("E1.J")), ("V", Col("E1.V"))])
            return self._new_vector(plan, m.shape[1], False, (m,))
        if isinstance(ci, RScalar) and isinstance(ri, MissingIndex):
            plan = Project(
                Filter(Scan(m.name, "E1"),
                       sx.Cmp("=", Col("E1.J"), Const(ci.as_int()))),
                [("I", Col("E1.I")), ("V", Col("E1.V"))])
            return self._new_vector(plan, m.shape[0], False, (m,))
        raise RError("unsupported matrix subscript combination")

    def _vector_assign(self, x: DBVec, idx, value) -> DBVec:
        if isinstance(idx, DBVec) and idx.logical \
                and isinstance(value, RScalar):
            # b[b>100] <- 100 as CASE WHEN — deferrable like any other op.
            plan = Project(
                Join(Scan(x.name, "B"), Scan(idx.name, "M"),
                     ["B.I"], ["M.I"]),
                [("I", Col("B.I")),
                 ("V", sx.CaseWhen(_truthy(Col("M.V")),
                                   Const(value.as_float()),
                                   Col("B.V")))])
            return self._new_vector(plan, x.length, x.logical, (x, idx))
        # Positional scatter: force a copy, then random-write the pages.
        if isinstance(idx, RScalar):
            positions = np.asarray([idx.as_int()], dtype=np.int64)
        elif isinstance(idx, DBVec):
            if idx.length > MAX_SCATTER_INDEXES:
                raise RError("scatter index vector too large")
            positions = self.vector_values(idx).astype(np.int64)
        else:
            raise RError("unsupported subscript in assignment")
        if isinstance(value, RScalar):
            new_vals = np.full(positions.size, value.as_float())
        elif isinstance(value, DBVec):
            new_vals = self.vector_values(value)
        else:
            raise RError("unsupported replacement value")
        if new_vals.shape[0] != positions.shape[0]:
            raise RError("replacement length mismatch")
        forced = self.force_vector(x)
        # force_vector returns x itself when already a table; copy then.
        if forced is x:
            name = self._fresh("T")
            self.db.materialize(Scan(x.name), name, build_index=True,
                                primary_key=("I",))
            forced = DBVec(self, name, x.length, "table",
                           logical=x.logical)
        table = self.db.table(forced.name)
        table.update_rows(positions - 1, {"V": new_vals})
        return forced

    # -- linear algebra ----------------------------------------------------
    def _matmul(self, a: DBMat, b: DBMat) -> DBMat:
        if a.shape[1] != b.shape[0]:
            raise RError(
                f"non-conformable matrices: {a.shape} x {b.shape}")
        plan = GroupAgg(
            Join(Scan(a.name, "A"), Scan(b.name, "B"),
                 ["A.J"], ["B.I"]),
            ["A.I", "B.J"],
            [("V", "SUM", sx.Arith("*", Col("A.V"), Col("B.V")))])
        # GroupAgg output columns are (I, J, V) bare names.
        return self._new_matrix(plan, (a.shape[0], b.shape[1]), (a, b))

    def _transpose(self, m: DBMat) -> DBMat:
        plan = Project(Scan(m.name, "E1"),
                       [("I", Col("E1.J")), ("J", Col("E1.I")),
                        ("V", Col("E1.V"))])
        return self._new_matrix(plan, (m.shape[1], m.shape[0]), (m,))

    def _reshape(self, v: DBVec, nrow: RScalar, ncol: RScalar) -> DBMat:
        n1, n2 = nrow.as_int(), ncol.as_int()
        if n1 * n2 != v.length:
            raise RError("reshape size mismatch")
        # Column-major fill, all in SQL arithmetic on the index.
        zero_based = sx.Arith("-", Col("E1.I"), Const(1))
        plan = Project(Scan(v.name, "E1"), [
            ("I", sx.Arith("+", sx.Arith("%", zero_based, Const(n1)),
                           Const(1))),
            ("J", sx.Arith("+", Func("FLOOR",
                                     sx.Arith("/", zero_based,
                                              Const(n1))),
                           Const(1))),
            ("V", Col("E1.V")),
        ])
        return self._new_matrix(plan, (n1, n2), (v,))

    # -- inspection --------------------------------------------------------
    def _print_vector(self, x: DBVec) -> str:
        from repro.rlang.reference import format_vector
        values = self.vector_values(x)
        if x.logical:
            values = values.astype(bool)
        return format_vector(values)

    def _print_matrix(self, m: DBMat) -> str:
        data = self.matrix_values(m)
        rows, cols = data.shape
        lines = [f"matrix {rows}x{cols}"]
        for r in range(min(rows, 6)):
            vals = " ".join(f"{v:g}" for v in data[r, :min(cols, 8)])
            lines.append(f"[{r + 1},] {vals}{' ...' if cols > 8 else ''}")
        if rows > 6:
            lines.append("...")
        return "\n".join(lines)

    def _first(self, x: DBVec) -> RScalar:
        plan = Filter(Scan(x.name, "D"),
                      sx.Cmp("=", Col("D.I"), Const(1)))
        out = self._collect(plan)
        _, vcol = self._iv_names(out)
        return RScalar(float(out[vcol][0]))

    def _which(self, x: DBVec) -> DBVec:
        plan = Project(
            Filter(Scan(x.name, "D"), _truthy(Col("D.V"))),
            [("I", Col("D.I")), ("V", Col("D.I"))])
        return self._renumber_materialize(plan, logical=False)

    def _head(self, x: DBVec, n: RScalar) -> DBVec:
        plan = Limit(Filter(Scan(x.name, "D"),
                            sx.Cmp("<=", Col("D.I"), Const(n.as_int()))),
                     n.as_int())
        return self._new_vector(plan, min(n.as_int(), x.length),
                                x.logical, (x,))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.db.io_stats

    def reset_stats(self) -> None:
        self.db.reset_stats()
        self.clock = SimClock()

    def sim_seconds(self) -> float:
        io = self.io_stats()
        # CPU model: ~2 element-operations per value scanned off disk.
        values_scanned = io.reads * (self.db.device.block_size // 8)
        return (self.clock.seconds(io)
                + 2 * values_scanned * self.clock.cpu_op_cost)
