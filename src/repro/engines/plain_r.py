"""The "Plain R" engine: eager evaluation under a simulated memory cap.

Models exactly what §3 of the paper describes: every operation eagerly
allocates a full-size result, R's generous garbage collector reclaims
intermediates the moment they are unreferenced (CPython refcounting plays
that role deterministically), and the operating system's virtual memory —
our :class:`~repro.vm.Pager` — thrashes once the working set outgrows the
cap.  All swap traffic is counted, standing in for the paper's DTrace
numbers.

The working set the paper walks through emerges naturally here: while
evaluating ``(y-ye)^2`` inside Example 1's line (1), five full-length
vectors are simultaneously live (x, y, the first sqrt, ``(x-xe)^2``, and
``y-ye``), which exceeds an 84 MB cap already at n = 2^21.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.rlang.reference import NumpyEngine, NumpyMatrix, NumpyVector
from repro.storage import IOStats, SimClock
from repro.vm import MemArray, MemHeap, Pager

from .base import Engine

#: Default memory cap: the paper's 84 MB minus ~16 MB of R runtime overhead,
#: i.e. room for roughly two 2^22-element vectors of float64 plus change.
DEFAULT_MEMORY_BYTES = 68 * 1024 * 1024


class PlainRVector(NumpyVector):
    """An eager vector whose pages live in simulated virtual memory."""

    def __init__(self, data: np.ndarray, heap: MemHeap) -> None:
        super().__init__(data)
        self._heap = heap
        self.mem: MemArray = heap.alloc(data)

    def __del__(self) -> None:  # deterministic CPython refcount GC
        with contextlib.suppress(Exception):
            self._heap.release(self.mem)


class PlainRMatrix(NumpyMatrix):
    """An eager matrix whose pages live in simulated virtual memory."""

    def __init__(self, data: np.ndarray, heap: MemHeap) -> None:
        super().__init__(data)
        self._heap = heap
        self.mem: MemArray = heap.alloc(data)

    def __del__(self) -> None:
        with contextlib.suppress(Exception):
            self._heap.release(self.mem)


class PlainREngine(NumpyEngine, Engine):
    """Eager numpy semantics + page-level paging charges."""

    name = "Plain R"
    vector_class = PlainRVector
    matrix_class = PlainRMatrix

    def __init__(self, memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 page_size: int = 8192) -> None:
        Engine.__init__(self)
        self.pager = Pager(memory_bytes, page_size=page_size)
        self.heap = MemHeap(self.pager)
        NumpyEngine.__init__(self)

    # -- wiring the reference engine to simulated memory -------------------
    def _wrap_vector(self, data: np.ndarray) -> PlainRVector:
        return PlainRVector(np.asarray(data), self.heap)

    def _wrap_matrix(self, data: np.ndarray) -> PlainRMatrix:
        return PlainRMatrix(np.asarray(data), self.heap)

    def _charge(self, inputs: list, output) -> None:
        """Stream page-by-page through operands and result, interleaved.

        R's vectorized C loops read their operands and write the result in
        one pass; the page-touch order below reproduces that access pattern,
        which is what decides how badly LRU paging behaves.
        """
        arrays = [obj.mem for obj in inputs
                  if isinstance(obj, (PlainRVector, PlainRMatrix))]
        out_mem = (output.mem
                   if isinstance(output, (PlainRVector, PlainRMatrix))
                   else None)
        max_pages = max(
            [a.n_pages for a in arrays] + ([out_mem.n_pages]
                                           if out_mem else [0]) + [0])
        elements = max(
            [a.size for a in arrays]
            + ([out_mem.size] if out_mem else [0]) + [0])
        for page in range(max_pages):
            for arr in arrays:
                if page < arr.n_pages:
                    self.pager.touch(arr.first_page + page)
            if out_mem is not None and page < out_mem.n_pages:
                self.pager.touch(out_mem.first_page + page, write=True)
        self.clock.charge_cpu(elements)

    # -- metrics ----------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.pager.stats

    def reset_stats(self) -> None:
        self.pager.reset_stats()
        self.clock = SimClock()

    @property
    def peak_live_bytes(self) -> int:
        return self.heap.peak_live_bytes
