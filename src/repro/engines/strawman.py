"""RIOT-DB/Strawman: every operation materializes immediately (§4).

*"A dbvector object would be mapped to a table ... The result of the above
query would be stored in another database table."*  No views, no deferral:
the twelve intermediates of Example 1's line (1) all hit disk as tables,
which is why the strawman underperforms even thrashing plain R at moderate
sizes (Figure 1) — while still degrading more gracefully because its I/O is
bulky and sequential.
"""

from __future__ import annotations

from .dbcommon import DBEngineBase


class StrawmanEngine(DBEngineBase):
    """One table per operation result, evaluated eagerly."""

    name = "RIOT-DB/Strawman"
    EAGER_MATERIALIZE = True
    MATERIALIZE_ON_ASSIGN = False
