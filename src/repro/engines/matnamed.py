"""RIOT-DB/MatNamed: views for intermediates, tables for named objects (§4.2).

Operations compose views, so evaluating a complex expression is one
pipelined query with no materialized intermediates — but every *named*
object (``d``, ``s``, ``z``) is forced to a table at assignment time.  This
variant isolates the benefit of pipelining from the benefit of cross-
statement deferral: it avoids the strawman's intermediate tables yet still
computes all of ``d`` even though only 100 elements are ever used.
"""

from __future__ import annotations

from .dbcommon import DBEngineBase


class MatNamedEngine(DBEngineBase):
    """Views within an expression; materialization at every assignment."""

    name = "RIOT-DB/MatNamed"
    EAGER_MATERIALIZE = False
    MATERIALIZE_ON_ASSIGN = True
