"""RIOT-DB (full): defer everything; evaluate only at output (§4.1-4.2).

Named objects stay views too, so by the time ``print(z)`` forces
evaluation, the accumulated view expands to the paper's single query

    SELECT S.I, SQRT(POW(X.V-xs,2)+POW(Y.V-ys,2))
         + SQRT(POW(X.V-xe,2)+POW(Y.V-ye,2))
    FROM X, Y, S WHERE X.I = Y.I AND X.I = S.V

and the optimizer's index-nested-loop plan computes exactly the 100
elements of ``d`` that are used — selective evaluation, the source of the
orders-of-magnitude win in Figure 1.
"""

from __future__ import annotations

from .dbcommon import DBEngineBase


class RiotDBEngine(DBEngineBase):
    """Fully deferred views with optimizer-driven selective evaluation."""

    name = "RIOT-DB"
    EAGER_MATERIALIZE = False
    MATERIALIZE_ON_ASSIGN = False
