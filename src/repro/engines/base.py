"""Engine interface and metrics shared by the four Figure-1 systems.

An *engine* supplies vector/matrix classes, registers their methods on a
generics table, and accounts for I/O on a counted device.  The interpreter
(:mod:`repro.rlang`) is engine-agnostic; benchmark harnesses run the same
program source on every engine and read the metrics off this interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.rlang.interp import Interpreter
from repro.storage import IOStats, SimClock


@dataclass
class RunResult:
    """Outcome of running one program on one engine."""

    engine: str
    output: list[str]
    io: IOStats
    sim_seconds: float
    wall_seconds: float
    env: dict = field(default_factory=dict, repr=False)

    @property
    def io_mb(self) -> float:
        return self.io.mb_total()


class Engine:
    """Base class: subclasses provide generics + array constructors."""

    name = "abstract"

    def __init__(self) -> None:
        self.clock = SimClock()

    # -- required API -----------------------------------------------------
    #: Subclasses assign a Generics table during construction.
    generics = None

    def make_vector(self, data):
        raise NotImplementedError

    def make_matrix(self, data):
        raise NotImplementedError

    def io_stats(self) -> IOStats:
        raise NotImplementedError

    def reset_stats(self) -> None:
        raise NotImplementedError

    # -- optional hooks ---------------------------------------------------
    #: Called by the interpreter on every assignment; may return a
    #: replacement value (how RIOT-DB/MatNamed forces materialization).
    on_assign = None

    # -- convenience --------------------------------------------------------
    def sim_seconds(self) -> float:
        return self.clock.seconds(self.io_stats())

    def run_program(self, source: str, seed: int = 20090104,
                    env: dict | None = None) -> RunResult:
        """Run R source on this engine and collect metrics.

        ``env`` pre-populates interpreter bindings (e.g. with vectors the
        harness built ahead of time so data generation is not measured).
        """
        interp = Interpreter(self, seed=seed)
        if env:
            interp.env.update(env)
        start = time.perf_counter()
        interp.run(source)
        wall = time.perf_counter() - start
        return RunResult(
            engine=self.name,
            output=list(interp.output),
            io=self.io_stats().snapshot(),
            sim_seconds=self.sim_seconds(),
            wall_seconds=wall,
            env=interp.env,
        )
