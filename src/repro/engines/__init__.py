"""The four systems compared in Figure 1 of the paper, behind one interface.

======================  ============================================
class                   behaviour
======================  ============================================
PlainREngine            eager, in-memory, thrashes under a memory cap
StrawmanEngine          every op materialized into a DB table
MatNamedEngine          views, but named objects are materialized
RiotDBEngine            fully deferred views + selective evaluation
======================  ============================================
"""

from .base import Engine, RunResult
from .dbcommon import DBEngineBase, DBMat, DBVec
from .matnamed import MatNamedEngine
from .plain_r import PlainREngine, PlainRMatrix, PlainRVector
from .riotdb import RiotDBEngine
from .strawman import StrawmanEngine


def _riotng():
    # Imported lazily: repro.core imports repro.engines.base, so pulling it
    # in at module top would be a cycle during package init.
    from repro.core.engine import RiotNGEngine
    return RiotNGEngine


class _LazyEngines(dict):
    """Engine registry that resolves the next-gen engine on first use."""

    def __getitem__(self, key):
        value = super().__getitem__(key)
        if value is _riotng:
            value = _riotng()
            super().__setitem__(key, value)
        return value


ALL_ENGINES = _LazyEngines({
    "plain": PlainREngine,
    "strawman": StrawmanEngine,
    "matnamed": MatNamedEngine,
    "riotdb": RiotDBEngine,
    "riotng": _riotng,
})


def make_engine(name: str, **kwargs) -> Engine:
    """Construct an engine by short name: plain|strawman|matnamed|riotdb."""
    try:
        cls = ALL_ENGINES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; options: {sorted(ALL_ENGINES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "ALL_ENGINES", "DBEngineBase", "DBMat", "DBVec", "Engine",
    "MatNamedEngine", "PlainREngine", "PlainRMatrix", "PlainRVector",
    "RiotDBEngine", "RunResult", "StrawmanEngine", "make_engine",
]
