"""Disk-resident B+tree index over int64 keys.

Every array table RIOT-DB creates declares its index columns as the primary
key; the B+tree over that key is what lets the optimizer run *index
nested-loop joins* — the plan behind the paper's selective-evaluation win
("probes X and Y with each S.V value").

Nodes occupy one page each and are read through the shared buffer pool, so
probe cost (root-to-leaf page reads, mostly buffer hits for upper levels) is
accounted like every other I/O in the system.

Composite keys (e.g. the ``(I, J)`` of a matrix table) are packed into a
single int64 by :class:`KeyCodec` using the array's known dimensions.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.storage import BufferPool, PageFile

_LEAF, _INTERNAL = 0, 1
_HEADER_WORDS = 4  # [node_type, count, next_leaf(+1, 0=None), unused]


class KeyCodec:
    """Packs a tuple of non-negative ints into one totally ordered int64.

    Strides are the sizes of the trailing dimensions, so packing preserves
    lexicographic order — a range scan over packed keys visits rows in
    ``(I, J)`` order.
    """

    def __init__(self, dims: tuple[int, ...]) -> None:
        if not dims:
            raise ValueError("at least one key dimension required")
        self.dims = tuple(int(d) for d in dims)
        strides = [1] * len(self.dims)
        for i in range(len(self.dims) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.dims[i + 1]
        self.strides = tuple(strides)
        total = strides[0] * self.dims[0]
        if total >= 2 ** 62:
            raise ValueError(f"key space {self.dims} too large to pack")

    def pack(self, *parts: np.ndarray) -> np.ndarray:
        if len(parts) != len(self.dims):
            raise ValueError(
                f"expected {len(self.dims)} key parts, got {len(parts)}")
        out = np.zeros_like(np.asarray(parts[0], dtype=np.int64))
        for part, stride in zip(parts, self.strides):
            out = out + np.asarray(part, dtype=np.int64) * stride
        return out

    def unpack(self, keys: np.ndarray) -> tuple[np.ndarray, ...]:
        keys = np.asarray(keys, dtype=np.int64)
        parts = []
        rest = keys
        for stride in self.strides:
            parts.append(rest // stride)
            rest = rest % stride
        return tuple(parts)


class BPlusTree:
    """B+tree mapping int64 key -> int64 value (row id)."""

    def __init__(self, file: PageFile, pool: BufferPool,
                 name: str = "index") -> None:
        self.file = file
        self.pool = pool
        self.name = name
        self.root_page = -1
        self.height = 0
        self.entry_count = 0
        words = file.page_size // 8
        #: max (key, value) pairs in a leaf / max keys in an internal node
        self.leaf_capacity = (words - _HEADER_WORDS) // 2
        self.internal_capacity = (words - _HEADER_WORDS - 1) // 2

    # ------------------------------------------------------------------
    # Node (de)serialization
    # ------------------------------------------------------------------
    def _read_node(self, page_no: int) -> tuple[int, np.ndarray, np.ndarray,
                                                int]:
        """Return (node_type, keys, values_or_children, next_leaf)."""
        frame = self.pool.get(self.file.block_of(page_no))
        words = frame.view(np.int64)
        node_type = int(words[0])
        count = int(words[1])
        next_leaf = int(words[2]) - 1
        keys = words[_HEADER_WORDS: _HEADER_WORDS + count].copy()
        if node_type == _LEAF:
            vals = words[_HEADER_WORDS + count:
                         _HEADER_WORDS + 2 * count].copy()
        else:
            vals = words[_HEADER_WORDS + count:
                         _HEADER_WORDS + 2 * count + 1].copy()
        return node_type, keys, vals, next_leaf

    def _write_node(self, page_no: int, node_type: int, keys: np.ndarray,
                    vals: np.ndarray, next_leaf: int = -1) -> None:
        words = np.zeros(self.file.page_size // 8, dtype=np.int64)
        count = keys.shape[0]
        words[0] = node_type
        words[1] = count
        words[2] = next_leaf + 1
        words[_HEADER_WORDS: _HEADER_WORDS + count] = keys
        words[_HEADER_WORDS + count:
              _HEADER_WORDS + count + vals.shape[0]] = vals
        self.pool.put(self.file.block_of(page_no), words.view(np.uint8))

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def bulk_load(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Build the tree bottom-up from already-sorted unique keys."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must align")
        if keys.size > 1 and not np.all(np.diff(keys) > 0):
            raise ValueError("bulk_load requires strictly increasing keys")
        self.entry_count = int(keys.size)
        if keys.size == 0:
            self.root_page = self.file.allocate_page()
            self._write_node(self.root_page, _LEAF,
                             np.empty(0, np.int64), np.empty(0, np.int64))
            self.height = 1
            return
        # Build leaves at ~90% fill so later inserts have headroom.
        per_leaf = max(1, int(self.leaf_capacity * 0.9))
        leaf_pages: list[int] = []
        leaf_first_keys: list[int] = []
        starts = list(range(0, keys.size, per_leaf))
        pages = [self.file.allocate_page() for _ in starts]
        for idx, start in enumerate(starts):
            end = min(start + per_leaf, keys.size)
            next_leaf = pages[idx + 1] if idx + 1 < len(pages) else -1
            self._write_node(pages[idx], _LEAF, keys[start:end],
                             values[start:end], next_leaf)
            leaf_pages.append(pages[idx])
            leaf_first_keys.append(int(keys[start]))
        # Build internal levels.
        level_pages = leaf_pages
        level_keys = leaf_first_keys
        self.height = 1
        per_node = max(2, int(self.internal_capacity * 0.9))
        while len(level_pages) > 1:
            new_pages: list[int] = []
            new_keys: list[int] = []
            for start in range(0, len(level_pages), per_node):
                end = min(start + per_node, len(level_pages))
                children = np.asarray(level_pages[start:end], dtype=np.int64)
                # Separator keys: first key of each child except the first.
                seps = np.asarray(level_keys[start + 1:end], dtype=np.int64)
                page = self.file.allocate_page()
                self._write_node(page, _INTERNAL, seps, children)
                new_pages.append(page)
                new_keys.append(level_keys[start])
            level_pages, level_keys = new_pages, new_keys
            self.height += 1
        self.root_page = level_pages[0]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _descend(self, key: int) -> int:
        """Return the leaf page that would contain ``key``."""
        page = self.root_page
        node_type, keys, children, _ = self._read_node(page)
        while node_type == _INTERNAL:
            pos = int(np.searchsorted(keys, key, side="right"))
            page = int(children[pos])
            node_type, keys, children, _ = self._read_node(page)
        return page

    def search(self, key: int) -> int | None:
        """Point lookup: return the value for ``key`` or None."""
        if self.root_page < 0:
            return None
        leaf = self._descend(int(key))
        _, keys, vals, _ = self._read_node(leaf)
        pos = int(np.searchsorted(keys, key))
        if pos < keys.size and keys[pos] == key:
            return int(vals[pos])
        return None

    def search_batch(self, probe_keys: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Probe many keys; returns (found_mask, values).

        Probes are issued in sorted order so adjacent keys share leaf pages
        (buffer-pool hits), then results are restored to input order — the
        standard batched-INLJ trick.
        """
        probes = np.asarray(probe_keys, dtype=np.int64)
        found = np.zeros(probes.size, dtype=bool)
        values = np.zeros(probes.size, dtype=np.int64)
        order = np.argsort(probes, kind="stable")
        for i in order:
            val = self.search(int(probes[i]))
            if val is not None:
                found[i] = True
                values[i] = val
        return found, values

    def range_scan(self, lo: int | None = None, hi: int | None = None
                   ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (keys, values) batches for lo <= key <= hi, in key order."""
        if self.root_page < 0 or self.entry_count == 0:
            return
        start_key = lo if lo is not None else -(2 ** 62)
        page = self._descend(start_key)
        while page >= 0:
            _, keys, vals, next_leaf = self._read_node(page)
            mask = np.ones(keys.size, dtype=bool)
            if lo is not None:
                mask &= keys >= lo
            if hi is not None:
                mask &= keys <= hi
            if mask.any():
                yield keys[mask], vals[mask]
            if hi is not None and keys.size and keys[-1] > hi:
                return
            page = next_leaf

    # ------------------------------------------------------------------
    # Insert (with splits)
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert one entry, splitting nodes on overflow."""
        key, value = int(key), int(value)
        if self.root_page < 0:
            self.bulk_load(np.asarray([key]), np.asarray([value]))
            return
        split = self._insert_rec(self.root_page, key, value)
        if split is not None:
            sep_key, right_page = split
            new_root = self.file.allocate_page()
            self._write_node(new_root, _INTERNAL,
                             np.asarray([sep_key], dtype=np.int64),
                             np.asarray([self.root_page, right_page],
                                        dtype=np.int64))
            self.root_page = new_root
            self.height += 1

    def _insert_rec(self, page: int, key: int, value: int
                    ) -> tuple[int, int] | None:
        node_type, keys, vals, next_leaf = self._read_node(page)
        if node_type == _LEAF:
            pos = int(np.searchsorted(keys, key))
            if pos < keys.size and keys[pos] == key:
                vals = vals.copy()
                vals[pos] = value
                self._write_node(page, _LEAF, keys, vals, next_leaf)
                return None
            keys = np.insert(keys, pos, key)
            vals = np.insert(vals, pos, value)
            self.entry_count += 1
            if keys.size <= self.leaf_capacity:
                self._write_node(page, _LEAF, keys, vals, next_leaf)
                return None
            mid = keys.size // 2
            right = self.file.allocate_page()
            self._write_node(right, _LEAF, keys[mid:], vals[mid:], next_leaf)
            self._write_node(page, _LEAF, keys[:mid], vals[:mid], right)
            return int(keys[mid]), right
        pos = int(np.searchsorted(keys, key, side="right"))
        split = self._insert_rec(int(vals[pos]), key, value)
        if split is None:
            return None
        sep_key, right_page = split
        keys = np.insert(keys, pos, sep_key)
        vals = np.insert(vals, pos + 1, right_page)
        if keys.size <= self.internal_capacity:
            self._write_node(page, _INTERNAL, keys, vals)
            return None
        mid = keys.size // 2
        up_key = int(keys[mid])
        right = self.file.allocate_page()
        self._write_node(right, _INTERNAL, keys[mid + 1:], vals[mid + 1:])
        self._write_node(page, _INTERNAL, keys[:mid], vals[:mid + 1])
        return up_key, right

    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[int, int]]:
        """All entries in key order (testing helper)."""
        for keys, vals in self.range_scan():
            for k, v in zip(keys.tolist(), vals.tolist()):
                yield k, v

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BPlusTree({self.name!r}, entries={self.entry_count}, "
                f"height={self.height})")
