"""Heap tables: fixed-width rows packed into pages, scanned in batches.

A table stores rows of 8-byte columns back to back in page-sized slabs of a
:class:`~repro.storage.PageFile`.  Pages are read and written through the
database's shared buffer pool, so a scan of a cold table costs exactly
``ceil(rows * row_bytes / page_size)`` sequential block reads — the storage
overhead relative to plain R's raw arrays (extra index columns) is therefore
measurable, which is one of the paper's Figure 1 observations about the
strawman.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.storage import BufferPool, PageFile

from .schema import Batch, COLUMN_BYTES, Schema


class HeapTable:
    """Append-only heap of fixed-width rows with batched scans."""

    def __init__(self, name: str, schema: Schema, file: PageFile,
                 pool: BufferPool) -> None:
        self.name = name
        self.schema = schema
        self.file = file
        self.pool = pool
        self.row_count = 0
        #: Columns the physical row order is sorted by (clustering order).
        #: Set when rows are bulk-loaded in primary-key order.
        self.clustered_on: tuple[str, ...] = ()
        self._append_buffer: list[Batch] = []
        self._buffered_rows = 0

    # ------------------------------------------------------------------
    @property
    def rows_per_page(self) -> int:
        return self.file.page_size // self.schema.row_bytes

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    def page_of_row(self, row_id: int) -> tuple[int, int]:
        """Return ``(page_no, slot)`` of a row id."""
        if not 0 <= row_id < self.row_count:
            raise IndexError(
                f"row {row_id} outside table {self.name!r} "
                f"[0, {self.row_count})")
        return divmod(row_id, self.rows_per_page)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_batch(self, batch: Batch) -> None:
        """Buffer a batch for appending; flushed page by page."""
        length = None
        for col in self.schema.columns:
            if col.name not in batch:
                raise KeyError(
                    f"batch missing column {col.name!r} for {self.name!r}")
            arr = np.ascontiguousarray(batch[col.name], dtype=col.dtype)
            batch[col.name] = arr
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError("ragged batch")
        if not length:
            return
        self._append_buffer.append(
            {c.name: batch[c.name] for c in self.schema.columns})
        self._buffered_rows += length
        while self._buffered_rows >= self.rows_per_page:
            self._flush_one_page()

    def finish_append(self) -> None:
        """Flush any partially filled trailing page."""
        while self._buffered_rows > 0:
            self._flush_one_page()

    def _flush_one_page(self) -> None:
        take = min(self._buffered_rows, self.rows_per_page)
        cols: dict[str, list[np.ndarray]] = {
            c.name: [] for c in self.schema.columns}
        remaining = take
        while remaining > 0:
            head = self._append_buffer[0]
            head_len = next(iter(head.values())).shape[0]
            use = min(head_len, remaining)
            for name in cols:
                cols[name].append(head[name][:use])
            if use == head_len:
                self._append_buffer.pop(0)
            else:
                self._append_buffer[0] = {
                    name: arr[use:] for name, arr in head.items()}
            remaining -= use
        page_batch = {name: np.concatenate(parts)
                      for name, parts in cols.items()}
        self._write_page_rows(page_batch, take)
        self._buffered_rows -= take
        self.row_count += take

    def _write_page_rows(self, batch: Batch, n_rows: int) -> None:
        """Encode ``n_rows`` rows into one fresh page and write it."""
        width = self.schema.width
        raw = np.zeros((self.rows_per_page, width * COLUMN_BYTES),
                       dtype=np.uint8)
        for j, col in enumerate(self.schema.columns):
            arr = np.ascontiguousarray(batch[col.name][:n_rows],
                                       dtype=col.dtype)
            raw[:n_rows, j * COLUMN_BYTES: (j + 1) * COLUMN_BYTES] = (
                arr.view(np.uint8).reshape(n_rows, COLUMN_BYTES))
        page_no = self.file.allocate_page()
        self.pool.put(self.file.block_of(page_no), raw.reshape(-1))

    def load(self, batch: Batch, clustered_on: tuple[str, ...] = ()) -> None:
        """Bulk-load a full table from one columnar batch."""
        self.append_batch(dict(batch))
        self.finish_append()
        self.clustered_on = tuple(clustered_on)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _decode_page(self, page_no: int, n_rows: int) -> Batch:
        frame = self.pool.get(self.file.block_of(page_no))
        width = self.schema.width
        raw = frame[: self.rows_per_page * width * COLUMN_BYTES].reshape(
            self.rows_per_page, width * COLUMN_BYTES)
        out: Batch = {}
        for j, col in enumerate(self.schema.columns):
            col_bytes = np.ascontiguousarray(
                raw[:n_rows, j * COLUMN_BYTES: (j + 1) * COLUMN_BYTES])
            out[col.name] = col_bytes.view(col.dtype).reshape(n_rows)
        return out

    def scan(self, batch_pages: int = 8) -> Iterator[Batch]:
        """Yield the table as batches of up to ``batch_pages`` pages."""
        rpp = self.rows_per_page
        page_no = 0
        remaining = self.row_count
        while remaining > 0:
            parts: list[Batch] = []
            for _ in range(batch_pages):
                if remaining <= 0:
                    break
                n = min(rpp, remaining)
                parts.append(self._decode_page(page_no, n))
                page_no += 1
                remaining -= n
            if len(parts) == 1:
                yield parts[0]
            else:
                yield {name: np.concatenate([p[name] for p in parts])
                       for name in parts[0]}

    def fetch_rows(self, row_ids: np.ndarray) -> Batch:
        """Random access: fetch specific rows (index-nested-loop inner side).

        Touches one page per distinct page among the row ids; rows come back
        in the order requested.
        """
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.size == 0:
            return {c.name: np.empty(0, dtype=c.dtype)
                    for c in self.schema.columns}
        if ids.min() < 0 or ids.max() >= self.row_count:
            raise IndexError("row id out of range")
        rpp = self.rows_per_page
        pages = ids // rpp
        order = np.argsort(pages, kind="stable")
        out = {c.name: np.empty(ids.size, dtype=c.dtype)
               for c in self.schema.columns}
        pos = 0
        while pos < ids.size:
            page = int(pages[order[pos]])
            end = pos
            while end < ids.size and pages[order[end]] == page:
                end += 1
            n_on_page = min(rpp, self.row_count - page * rpp)
            decoded = self._decode_page(page, n_on_page)
            sel = order[pos:end]
            slots = ids[sel] - page * rpp
            for name, arr in decoded.items():
                out[name][sel] = arr[slots]
            pos = end
        return out

    def update_rows(self, row_ids: np.ndarray,
                    updates: dict[str, np.ndarray]) -> None:
        """In-place update of specific rows (read-modify-write per page).

        This is the scatter path behind ``b[s] <- v`` once an object is
        materialized: touched pages are re-encoded and written back, costing
        random I/O proportional to the number of distinct pages.
        """
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.row_count:
            raise IndexError("row id out of range")
        for name in updates:
            if not self.schema.has_column(name):
                raise KeyError(f"no column {name!r} in {self.name!r}")
        rpp = self.rows_per_page
        pages = ids // rpp
        order = np.argsort(pages, kind="stable")
        pos = 0
        while pos < ids.size:
            page = int(pages[order[pos]])
            end = pos
            while end < ids.size and pages[order[end]] == page:
                end += 1
            n_on_page = min(rpp, self.row_count - page * rpp)
            decoded = self._decode_page(page, n_on_page)
            decoded = {k: v.copy() for k, v in decoded.items()}
            sel = order[pos:end]
            slots = ids[sel] - page * rpp
            for name, values in updates.items():
                col = self.schema.column(name)
                vals = np.asarray(values, dtype=col.dtype)
                decoded[name][slots] = vals[sel]
            self._rewrite_page(page, decoded, n_on_page)
            pos = end

    def _rewrite_page(self, page_no: int, batch: Batch,
                      n_rows: int) -> None:
        width = self.schema.width
        raw = np.zeros((self.rows_per_page, width * COLUMN_BYTES),
                       dtype=np.uint8)
        for j, col in enumerate(self.schema.columns):
            arr = np.ascontiguousarray(batch[col.name][:n_rows],
                                       dtype=col.dtype)
            raw[:n_rows, j * COLUMN_BYTES: (j + 1) * COLUMN_BYTES] = (
                arr.view(np.uint8).reshape(n_rows, COLUMN_BYTES))
        self.pool.put(self.file.block_of(page_no), raw.reshape(-1))

    def drop(self) -> None:
        for page in range(self.file.num_pages):
            self.pool.invalidate(self.file.block_of(page))
        self.file.drop()
        self.row_count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HeapTable({self.name!r}, rows={self.row_count}, "
                f"pages={self.num_pages})")
