"""Query optimization: view expansion, pushdown, join ordering, access paths.

This is the component the paper leans on hardest: RIOT-DB's entire win comes
from handing a *composed view* to a query optimizer that can

- inline view definitions (view expansion, §4.1),
- flatten the result into one select-project-join block so filters and join
  predicates move freely (the relational analogue of the Figure-2 subscript
  pushdown),
- order joins greedily from the smallest input, and
- pick index nested-loop plans when the driving side is tiny — the
  "probes X and Y with each S.V value" plan that makes selective evaluation
  orders of magnitude cheaper than computing whole vectors.

Plans that do not flatten (aggregates, sorts, limits in the middle) fall back
to a structural mapping, so every logical plan remains executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from . import sqlexpr as sx
from .catalog import Catalog
from .executor import (ExternalSortOp, FilterOp, IndexRangeScan,
                       LimitOp, PhysOp, ProjectOp, ScalarAggOp,
                       SeqScan, SortAggOp, ValuesOp)
from .joins import HashJoin, IndexNestedLoopJoin, MergeJoin
from .plan import (Filter, GroupAgg, Join, Limit, PlanNode, Project, Rename,
                   Scan, Sort, Values)
from .schema import Column, Schema
from .sqlexpr import Col, Expr

#: Optimizer cost ratio of a random page access to a sequential one (the
#: classic ``random_page_cost`` knob; PostgreSQL's default is 4).  Used to
#: decide between probing an index per outer row and scanning the inner
#: table.  The *simulated clock* uses a harsher physical ratio — optimizers
#: habitually under-price random I/O, and keeping that behaviour here
#: reproduces which plans a 2009 commercial optimizer would pick.
OPT_RANDOM_PAGE_COST = 4.0

#: Pages a single index probe is assumed to touch (leaf + heap page; upper
#: index levels are presumed buffer-resident).
PAGES_PER_PROBE = 2.0


# ----------------------------------------------------------------------
# Expression utilities
# ----------------------------------------------------------------------
def transform_columns(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` with every Col replaced by ``fn(name) -> Expr``."""
    if isinstance(expr, sx.Col):
        return fn(expr.name)
    if isinstance(expr, sx.Const):
        return expr
    if isinstance(expr, sx.Arith):
        return sx.Arith(expr.op, transform_columns(expr.left, fn),
                        transform_columns(expr.right, fn))
    if isinstance(expr, sx.Func):
        return sx.Func(expr.name,
                       *(transform_columns(a, fn) for a in expr.args))
    if isinstance(expr, sx.Cmp):
        return sx.Cmp(expr.op, transform_columns(expr.left, fn),
                      transform_columns(expr.right, fn))
    if isinstance(expr, sx.And):
        return sx.And(*(transform_columns(t, fn) for t in expr.terms))
    if isinstance(expr, sx.Or):
        return sx.Or(*(transform_columns(t, fn) for t in expr.terms))
    if isinstance(expr, sx.Not):
        return sx.Not(transform_columns(expr.term, fn))
    if isinstance(expr, sx.CaseWhen):
        return sx.CaseWhen(transform_columns(expr.cond, fn),
                           transform_columns(expr.then, fn),
                           transform_columns(expr.otherwise, fn))
    if isinstance(expr, sx.InSet):
        return sx.InSet(transform_columns(expr.expr, fn), expr.values)
    raise TypeError(f"unknown expression type {type(expr).__name__}")


def resolve_output(name: str, outputs: dict[str, Expr]) -> Expr:
    """Resolve a (possibly qualified) reference against named outputs."""
    if name in outputs:
        return outputs[name]
    bare = name.split(".")[-1]
    matches = [k for k in outputs
               if k == bare or k.split(".")[-1] == bare]
    if len(matches) == 1:
        return outputs[matches[0]]
    if len(matches) > 1:
        raise KeyError(f"ambiguous reference {name!r}: {sorted(matches)}")
    raise KeyError(f"cannot resolve {name!r} among {sorted(outputs)}")


def substitute(expr: Expr, outputs: dict[str, Expr]) -> Expr:
    """Inline child output expressions into ``expr`` (view merging)."""
    return transform_columns(expr, lambda name:
                             resolve_output(name, outputs))


def aliases_of(expr: Expr) -> set[str]:
    """Source aliases referenced by an expression ('X.I' -> 'X')."""
    out = set()
    for name in expr.columns():
        out.add(name.split(".")[0] if "." in name else name)
    return out


# ----------------------------------------------------------------------
# View expansion
# ----------------------------------------------------------------------
class _AliasAllocator:
    def __init__(self) -> None:
        self.counter = 0

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}#{self.counter}"


def expand_views(plan: PlanNode, catalog: Catalog,
                 _alloc: _AliasAllocator | None = None) -> PlanNode:
    """Inline every view reference, uniquifying internal aliases.

    A ``Scan(view, alias=A)`` becomes ``Rename(view_plan, bare -> A.bare)``.
    Aliases inside the inlined body get a fresh suffix so the same view can
    appear several times in one query (self-joins of derived vectors).
    """
    alloc = _alloc or _AliasAllocator()
    if isinstance(plan, Scan) and catalog.is_view(plan.name):
        body = expand_views(catalog.view(plan.name), catalog, alloc)
        body = _uniquify_aliases(body, alloc, catalog)
        schema = body.output_schema(catalog)
        mapping = {c.name: f"{plan.alias}.{c.name}" for c in schema.columns}
        return Rename(body, mapping)
    if not plan.children:
        return plan
    children = tuple(expand_views(c, catalog, alloc)
                     for c in plan.children)
    return plan.with_children(children)


def _uniquify_aliases(plan: PlanNode, alloc: _AliasAllocator,
                      catalog: Catalog) -> PlanNode:
    """Rename every alias namespace in a subtree and fix up references.

    Two kinds of prefixes are view-local and must be freshened: aliases of
    base-table scans, and the qualifier prefixes introduced when a nested
    view reference was expanded into a Rename (its new names look like
    ``E1.I`` even though no Scan carries that alias anymore).  Without the
    second kind, sibling view bodies that both used the alias ``E1``
    collide after inlining.
    """
    mapping: dict[str, str] = {}

    def note(alias: str) -> None:
        if alias not in mapping:
            mapping[alias] = alloc.fresh(alias.split("#")[0])

    def collect(node: PlanNode) -> None:
        if isinstance(node, Scan):
            note(node.alias)
        if isinstance(node, Rename):
            for new_name in node.mapping.values():
                if "." in new_name:
                    note(new_name.split(".", 1)[0])
        for child in node.children:
            collect(child)

    collect(plan)

    def remap_name(name: str) -> str:
        if "." in name:
            alias, col = name.split(".", 1)
            if alias in mapping:
                return f"{mapping[alias]}.{col}"
        return name

    def rebuild(node: PlanNode) -> PlanNode:
        children = tuple(rebuild(c) for c in node.children)
        if isinstance(node, Scan):
            return Scan(node.name, mapping.get(node.alias, node.alias))
        if isinstance(node, Filter):
            return Filter(children[0], transform_columns(
                node.predicate, lambda n: Col(remap_name(n))))
        if isinstance(node, Project):
            outs = [(name, transform_columns(
                expr, lambda n: Col(remap_name(n))))
                for name, expr in node.outputs]
            return Project(children[0], outs)
        if isinstance(node, Join):
            return Join(children[0], children[1],
                        [remap_name(k) for k in node.left_keys],
                        [remap_name(k) for k in node.right_keys])
        if isinstance(node, Rename):
            new_map = {remap_name(old): remap_name(new)
                       for old, new in node.mapping.items()}
            return Rename(children[0], new_map)
        if isinstance(node, GroupAgg):
            aggs = [(name, func, transform_columns(
                expr, lambda n: Col(remap_name(n))))
                for name, func, expr in node.aggs]
            return GroupAgg(children[0],
                            [remap_name(k) for k in node.group_keys], aggs)
        if isinstance(node, Sort):
            return Sort(children[0], [remap_name(k) for k in node.keys])
        return node.with_children(children)

    return rebuild(plan)


# ----------------------------------------------------------------------
# SPJ flattening
# ----------------------------------------------------------------------
@dataclass
class SourceInfo:
    alias: str
    table_name: str | None = None
    values: Values | None = None


@dataclass
class SPJBlock:
    """A flattened select-project-join block."""

    sources: dict[str, SourceInfo] = field(default_factory=dict)
    #: Equality join conditions as (left_expr, right_expr).
    conds: list[tuple[Expr, Expr]] = field(default_factory=list)
    #: Other filter predicates.
    filters: list[Expr] = field(default_factory=list)
    #: Final SELECT list: ordered (name, expr) over source columns.
    outputs: list[tuple[str, Expr]] = field(default_factory=list)

    def output_map(self) -> dict[str, Expr]:
        return dict(self.outputs)


def flatten(plan: PlanNode, catalog: Catalog) -> SPJBlock | None:
    """Merge a plan of Scan/Values/Filter/Project/Join/Rename nodes."""
    if isinstance(plan, Scan):
        if catalog.is_view(plan.name):
            raise ValueError("flatten() requires views expanded first")
        block = SPJBlock()
        block.sources[plan.alias] = SourceInfo(plan.alias,
                                               table_name=plan.name)
        schema = catalog.table(plan.name).schema
        block.outputs = [(f"{plan.alias}.{c.name}",
                          Col(f"{plan.alias}.{c.name}"))
                         for c in schema.columns]
        return block
    if isinstance(plan, Values):
        block = SPJBlock()
        alias = plan.name
        block.sources[alias] = SourceInfo(alias, values=plan)
        block.outputs = [(f"{alias}.{c.name}", Col(f"{alias}.{c.name}"))
                         for c in plan.schema.columns]
        return block
    if isinstance(plan, Filter):
        block = flatten(plan.child, catalog)
        if block is None:
            return None
        pred = substitute(plan.predicate, block.output_map())
        block.filters.extend(sx.split_conjuncts(pred))
        return block
    if isinstance(plan, Project):
        block = flatten(plan.child, catalog)
        if block is None:
            return None
        outs = block.output_map()
        block.outputs = [(name, substitute(expr, outs))
                         for name, expr in plan.outputs]
        return block
    if isinstance(plan, Rename):
        block = flatten(plan.child, catalog)
        if block is None:
            return None
        block.outputs = [(plan.mapping.get(name, name), expr)
                         for name, expr in block.outputs]
        return block
    if isinstance(plan, Join):
        left = flatten(plan.children[0], catalog)
        right = flatten(plan.children[1], catalog)
        if left is None or right is None:
            return None
        if set(left.sources) & set(right.sources):
            return None  # alias collision; expansion should prevent this
        block = SPJBlock()
        block.sources = {**left.sources, **right.sources}
        block.conds = left.conds + right.conds
        block.filters = left.filters + right.filters
        louts, routs = left.output_map(), right.output_map()
        for lk, rk in zip(plan.left_keys, plan.right_keys):
            block.conds.append((resolve_output(lk, louts),
                                resolve_output(rk, routs)))
        block.outputs = left.outputs + right.outputs
        return block
    return None


# ----------------------------------------------------------------------
# Physical planning
# ----------------------------------------------------------------------
class Optimizer:
    """Turns logical plans into physical operator trees."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public entry ---------------------------------------------------
    def optimize(self, plan: PlanNode) -> PhysOp:
        expanded = expand_views(plan, self.catalog)
        return self._plan(expanded)

    # -- recursive planning ----------------------------------------------
    def _plan(self, plan: PlanNode) -> PhysOp:
        if isinstance(plan, GroupAgg):
            child = self._plan(plan.child)
            out_schema = plan.output_schema(self.catalog)
            if not plan.group_keys:
                return ScalarAggOp(child, plan.aggs, out_schema)
            keys = list(plan.group_keys)
            if tuple(child.sorted_on[:len(keys)]) != tuple(keys):
                child = ExternalSortOp(child, keys)
            return SortAggOp(child, keys, plan.aggs, out_schema)
        if isinstance(plan, Sort):
            child = self._plan(plan.child)
            if tuple(child.sorted_on[:len(plan.keys)]) == tuple(plan.keys):
                return child
            return ExternalSortOp(child, list(plan.keys))
        if isinstance(plan, Limit):
            return LimitOp(self._plan(plan.child), plan.n)
        block = flatten(plan, self.catalog)
        if block is not None:
            return self._plan_spj(block)
        return self._plan_structural(plan)

    # -- fallback structural mapping --------------------------------------
    def _plan_structural(self, plan: PlanNode) -> PhysOp:
        if isinstance(plan, Scan):
            table = self.catalog.table(plan.name)
            return SeqScan(table, plan.alias)
        if isinstance(plan, Values):
            qualified = {f"{plan.name}.{k}": v
                         for k, v in plan.batch.items()}
            schema = plan.schema.rename(
                {c.name: f"{plan.name}.{c.name}"
                 for c in plan.schema.columns})
            return ValuesOp(qualified, schema)
        if isinstance(plan, Filter):
            return FilterOp(self._plan(plan.child), plan.predicate)
        if isinstance(plan, (Project, Rename)):
            child = self._plan(plan.children[0])
            if isinstance(plan, Rename):
                outputs = [(new, Col(old))
                           for old, new in plan.mapping.items()]
            else:
                outputs = plan.outputs
            return ProjectOp(child, outputs,
                             plan.output_schema(self.catalog))
        if isinstance(plan, Join):
            left = self._plan(plan.children[0])
            right = self._plan(plan.children[1])
            lk, rk = plan.left_keys[0], plan.right_keys[0]
            op = self._join_phys(left, right, Col(lk), Col(rk),
                                 plan.est_rows(self.catalog))
            for extra_l, extra_r in zip(plan.left_keys[1:],
                                        plan.right_keys[1:]):
                op = FilterOp(op, sx.Cmp("=", Col(extra_l), Col(extra_r)))
            return op
        raise NotImplementedError(
            f"no structural plan for {type(plan).__name__}")

    def _join_phys(self, left: PhysOp, right: PhysOp, lkey: Expr,
                   rkey: Expr, est: float) -> PhysOp:
        if (isinstance(lkey, Col) and isinstance(rkey, Col)
                and left.sorted_on[:1] == (lkey.name,)
                and right.sorted_on[:1] == (rkey.name,)):
            return MergeJoin(left, right, lkey.name, rkey.name)
        left, lname = self._ensure_key_column(left, lkey)
        right, rname = self._ensure_key_column(right, rkey)
        return HashJoin(left, right, lname, rname)

    # -- SPJ planning ------------------------------------------------------
    def _eliminate_self_joins(self, block: SPJBlock) -> None:
        """Collapse scans of the same table joined on equal primary keys.

        Expanding Example 1's views yields X and Y scanned twice each (once
        per sqrt term); primary-key self-join elimination reduces the query
        to the paper's ``FROM X, Y, S`` form — one pass over each input.
        Key equality is propagated *transitively* (union-find over the
        equality conditions): ``Y1.I = X.I`` and ``Y2.I = X.I`` prove
        ``Y1.I = Y2.I`` even without a direct condition between them.
        """
        parent: dict[str, str] = {}

        def find(name: str) -> str:
            parent.setdefault(name, name)
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for lexpr, rexpr in block.conds:
            if isinstance(lexpr, Col) and isinstance(rexpr, Col):
                union(lexpr.name, rexpr.name)

        # Group aliases by (table, equivalence class of its PK column).
        groups: dict[tuple[str, str], list[str]] = {}
        for alias, info in block.sources.items():
            if info.table_name is None:
                continue
            pk = self.catalog.table(info.table_name).schema.primary_key
            if len(pk) != 1:
                continue
            key_col = f"{alias}.{pk[0]}"
            groups.setdefault((info.table_name, find(key_col)),
                              []).append(alias)

        remap_alias: dict[str, str] = {}
        for (_table, _root), aliases in groups.items():
            keep = aliases[0]
            for other in aliases[1:]:
                remap_alias[other] = keep
        if remap_alias:
            def remap(name: str) -> Expr:
                if "." in name:
                    alias, col = name.split(".", 1)
                    if alias in remap_alias:
                        return Col(f"{remap_alias[alias]}.{col}")
                return Col(name)

            block.conds = [(transform_columns(l, remap),
                            transform_columns(r, remap))
                           for l, r in block.conds]
            block.filters = [transform_columns(p, remap)
                             for p in block.filters]
            block.outputs = [(name, transform_columns(e, remap))
                             for name, e in block.outputs]
            for dropped in remap_alias:
                del block.sources[dropped]
        # Unification can leave trivial (A.x = A.x) conditions behind,
        # and duplicate conditions connecting the same pair.
        seen: set[tuple[str, str]] = set()
        kept: list[tuple[Expr, Expr]] = []
        for l, r in block.conds:
            if isinstance(l, Col) and isinstance(r, Col):
                if l.name == r.name:
                    continue
                key = tuple(sorted((l.name, r.name)))
                if key in seen:
                    continue
                seen.add(key)
            kept.append((l, r))
        block.conds = kept

    def _plan_spj(self, block: SPJBlock) -> PhysOp:
        self._eliminate_self_joins(block)
        filters = list(block.filters)
        single, multi = self._split_filters(filters)
        ests = {alias: self._source_est(info, single.get(alias, []))
                for alias, info in block.sources.items()}
        remaining = set(block.sources)
        start = min(remaining, key=lambda a: ests[a])
        pipeline = self._source_phys(block.sources[start],
                                     single.get(start, []))
        cur_est = ests[start]
        placed = {start}
        remaining.discard(start)
        pending_conds = list(block.conds)
        applied_multi: set[int] = set()

        while remaining:
            choice = self._pick_next(pending_conds, placed, remaining, ests)
            if choice is None:
                raise NotImplementedError(
                    "cartesian products are not supported "
                    f"(remaining sources: {sorted(remaining)})")
            cond_idx, alias, outer_expr, inner_col = choice
            pending_conds.pop(cond_idx)
            info = block.sources[alias]
            pipeline = self._build_join(
                pipeline, cur_est, info, single.get(alias, []),
                outer_expr, inner_col, ests[alias])
            cur_est = min(cur_est, ests[alias])
            placed.add(alias)
            remaining.discard(alias)
            # Any join conditions now fully contained become filters.
            still_pending = []
            for lexpr, rexpr in pending_conds:
                refs = aliases_of(lexpr) | aliases_of(rexpr)
                if refs <= placed:
                    pipeline = FilterOp(pipeline,
                                        sx.Cmp("=", lexpr, rexpr))
                else:
                    still_pending.append((lexpr, rexpr))
            pending_conds = still_pending
            for i, pred in enumerate(multi):
                if i in applied_multi:
                    continue
                if aliases_of(pred) <= placed:
                    pipeline = FilterOp(pipeline, pred)
                    applied_multi.add(i)
        for i, pred in enumerate(multi):
            if i not in applied_multi:
                pipeline = FilterOp(pipeline, pred)
        out_schema = self._project_schema(block, pipeline)
        return ProjectOp(pipeline, block.outputs, out_schema)

    # -- SPJ helpers -------------------------------------------------------
    def _split_filters(self, filters: list[Expr]
                       ) -> tuple[dict[str, list[Expr]], list[Expr]]:
        single: dict[str, list[Expr]] = {}
        multi: list[Expr] = []
        for pred in filters:
            refs = aliases_of(pred)
            if len(refs) == 1:
                single.setdefault(next(iter(refs)), []).append(pred)
            else:
                multi.append(pred)
        return single, multi

    def _source_rows(self, info: SourceInfo) -> float:
        if info.table_name is not None:
            return float(self.catalog.table(info.table_name).row_count)
        return info.values.est_rows(self.catalog)

    def _source_est(self, info: SourceInfo, filters: list[Expr]) -> float:
        est = self._source_rows(info)
        for pred in filters:
            frac = self._range_fraction(info, pred)
            est *= frac if frac is not None else 0.33
        return max(est, 1.0)

    def _range_fraction(self, info: SourceInfo, pred: Expr) -> float | None:
        """Selectivity for a PK range/equality predicate, if it is one."""
        parsed = self._parse_range(info, pred)
        if parsed is None:
            return None
        lo, hi = parsed
        rows = self._source_rows(info)
        if rows <= 0:
            return 1.0
        lo_v = lo if lo is not None else 1
        hi_v = hi if hi is not None else rows
        return max(0.0, min(1.0, (hi_v - lo_v + 1) / rows))

    def _pk_column(self, info: SourceInfo) -> str | None:
        if info.table_name is None:
            return None
        table = self.catalog.table(info.table_name)
        if len(table.schema.primary_key) == 1:
            return table.schema.primary_key[0]
        return None

    def _parse_range(self, info: SourceInfo, pred: Expr
                     ) -> tuple[int | None, int | None] | None:
        pk = self._pk_column(info)
        if pk is None or not isinstance(pred, sx.Cmp):
            return None
        qualified = f"{info.alias}.{pk}"

        def is_pk(e: Expr) -> bool:
            return isinstance(e, Col) and e.name in (qualified, pk)

        left, right, op = pred.left, pred.right, pred.op
        if is_pk(left) and isinstance(right, sx.Const):
            val = right.value
        elif is_pk(right) and isinstance(left, sx.Const):
            val = left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            left, right = right, left
        else:
            return None
        val = int(val)
        if op == "=":
            return (val, val)
        if op == "<=":
            return (None, val)
        if op == "<":
            return (None, val - 1)
        if op == ">=":
            return (val, None)
        if op == ">":
            return (val + 1, None)
        return None

    def _source_phys(self, info: SourceInfo,
                     filters: list[Expr]) -> PhysOp:
        if info.values is not None:
            alias = info.alias
            qualified = {f"{alias}.{k}": v
                         for k, v in info.values.batch.items()}
            schema = info.values.schema.rename(
                {c.name: f"{alias}.{c.name}"
                 for c in info.values.schema.columns})
            op: PhysOp = ValuesOp(qualified, schema)
            for pred in filters:
                op = FilterOp(op, pred)
            return op
        table = self.catalog.table(info.table_name)
        index = self.catalog.index_on(info.table_name)
        pk = self._pk_column(info)
        lo = hi = None
        residual: list[Expr] = []
        if index is not None and pk is not None:
            for pred in filters:
                rng = self._parse_range(info, pred)
                if rng is None:
                    residual.append(pred)
                    continue
                plo, phi = rng
                if plo is not None:
                    lo = plo if lo is None else max(lo, plo)
                if phi is not None:
                    hi = phi if hi is None else min(hi, phi)
        else:
            residual = list(filters)
        use_index = False
        if (lo is not None or hi is not None) and table.row_count:
            lo_v = lo if lo is not None else 1
            hi_v = hi if hi is not None else table.row_count
            frac = (hi_v - lo_v + 1) / table.row_count
            use_index = frac < 0.25
        if use_index:
            op = IndexRangeScan(table, index, info.alias, lo, hi)
        else:
            op = SeqScan(table, info.alias)
            residual = list(filters)
        for pred in residual:
            op = FilterOp(op, pred)
        return op

    def _pick_next(self, conds, placed: set[str], remaining: set[str],
                   ests: dict[str, float]):
        """Choose the next join edge: (cond_idx, new_alias, outer, inner)."""
        best = None
        for idx, (lexpr, rexpr) in enumerate(conds):
            lrefs, rrefs = aliases_of(lexpr), aliases_of(rexpr)
            for outer_expr, inner_expr, inner_refs, outer_refs in (
                    (lexpr, rexpr, rrefs, lrefs),
                    (rexpr, lexpr, lrefs, rrefs)):
                if not (outer_refs <= placed):
                    continue
                if len(inner_refs) != 1:
                    continue
                alias = next(iter(inner_refs))
                if alias not in remaining:
                    continue
                if not isinstance(inner_expr, Col):
                    continue
                key = ests[alias]
                if best is None or key < best[4]:
                    best = (idx, alias, outer_expr, inner_expr, key)
        if best is None:
            return None
        return best[0], best[1], best[2], best[3]

    def _build_join(self, pipeline: PhysOp, cur_est: float,
                    info: SourceInfo, src_filters: list[Expr],
                    outer_expr: Expr, inner_col: Col,
                    inner_est: float) -> PhysOp:
        # Option 1: index nested-loop join into a base table.
        if info.table_name is not None and not src_filters:
            table = self.catalog.table(info.table_name)
            index = self.catalog.index_on(info.table_name)
            bare_inner = inner_col.name.split(".")[-1]
            if (index is not None
                    and index.key_columns == (bare_inner,)):
                inner_pages = max(table.num_pages, 1)
                probe_cost = (cur_est * OPT_RANDOM_PAGE_COST
                              * PAGES_PER_PROBE)
                if probe_cost < inner_pages:
                    pipeline, outer_name = self._ensure_key_column(
                        pipeline, outer_expr)
                    return IndexNestedLoopJoin(
                        pipeline, table, index, info.alias, outer_name)
        source = self._source_phys(info, src_filters)
        # Option 2: pipelined merge join when both sides arrive sorted.
        if (isinstance(outer_expr, Col)
                and pipeline.sorted_on[:1] == (outer_expr.name,)
                and source.sorted_on[:1] == (inner_col.name,)):
            return MergeJoin(pipeline, source, outer_expr.name,
                             inner_col.name)
        # Option 3: hash join; build the side estimated smaller.
        pipeline, outer_name = self._ensure_key_column(pipeline, outer_expr)
        if inner_est <= cur_est:
            return HashJoin(pipeline, source, outer_name, inner_col.name)
        return HashJoin(source, pipeline, inner_col.name, outer_name)

    def _ensure_key_column(self, op: PhysOp, key: Expr
                           ) -> tuple[PhysOp, str]:
        """Make sure the join key exists as a named column on ``op``."""
        if isinstance(key, Col):
            return op, key.name
        name = "__joinkey"
        outputs = [(c.name, Col(c.name)) for c in op.schema.columns]
        outputs.append((name, key))
        schema = Schema(tuple(op.schema.columns) + (Column(name, "INT"),))
        return ProjectOp(op, outputs, schema), name

    def _project_schema(self, block: SPJBlock, pipeline: PhysOp) -> Schema:
        from .plan import _infer_type
        cols = []
        for name, expr in block.outputs:
            cols.append(Column(name, _infer_type(expr, pipeline.schema)))
        return Schema(tuple(cols))
