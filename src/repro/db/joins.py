"""Join operators: merge, hash (with grace partitioning), index nested-loop.

All joins are single-column int64 inner equijoins — exactly the joins
RIOT-DB emits (``E1.I = E2.I`` for elementwise ops, ``A.J = B.I`` for matrix
multiply, ``D.I = S.V`` for subscripting).  The optimizer picks:

- **merge join** when both inputs arrive clustered on the key (aligned
  vector tables — a purely pipelined, zero-spill plan),
- **index nested-loop join** when one input is tiny and the other has a
  primary-key index (the paper's selective-evaluation plan: *"probes X and Y
  with each S.V value"*),
- **hash join** otherwise, spilling grace partitions to temp tables when the
  build side exceeds ``work_mem`` (the plan behind matrix multiply in SQL).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .executor import ExecContext, PhysOp, batch_bytes
from .schema import Batch, Schema, batch_length, slice_batch
from .table import HeapTable


def _combine_schemas(left: Schema, right: Schema) -> Schema:
    return Schema(tuple(left.columns) + tuple(right.columns))


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s+c)`` for each (s, c) pair, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64)
    group_starts = np.repeat(np.cumsum(counts) - counts, counts)
    return reps + (offsets - group_starts)


class MergeJoin(PhysOp):
    """Pipelined join of two inputs sorted on the key, keys unique per side.

    The unique-key restriction is safe because the optimizer only selects
    merge join for primary-key-to-primary-key joins (vector tables clustered
    on ``I``), which is RIOT-DB's common case for elementwise operations.
    """

    def __init__(self, left: PhysOp, right: PhysOp,
                 left_key: str, right_key: str) -> None:
        self.children = (left, right)
        self.left_key = left_key
        self.right_key = right_key
        self.schema = _combine_schemas(left.schema, right.schema)
        self.sorted_on = (left_key,)

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        left_it = self.children[0].execute(ctx)
        right_it = self.children[1].execute(ctx)
        left_buf: Batch | None = None
        right_buf: Batch | None = None
        left_done = right_done = False

        def refill(buf: Batch | None, it, done: bool
                   ) -> tuple[Batch | None, bool]:
            if done:
                return buf, done
            try:
                nxt = next(it)
            except StopIteration:
                return buf, True
            if buf is None or batch_length(buf) == 0:
                return nxt, done
            return ({k: np.concatenate([buf[k], nxt[k]]) for k in nxt},
                    done)

        left_buf, left_done = refill(left_buf, left_it, left_done)
        right_buf, right_done = refill(right_buf, right_it, right_done)
        while (left_buf is not None and batch_length(left_buf)
               and right_buf is not None and batch_length(right_buf)):
            lkeys = np.asarray(left_buf[self.left_key], dtype=np.int64)
            rkeys = np.asarray(right_buf[self.right_key], dtype=np.int64)
            # Rows beyond the smaller side's last key cannot match yet.
            bound = min(int(lkeys[-1]), int(rkeys[-1]))
            lmask = lkeys <= bound
            rmask = rkeys <= bound
            lk = lkeys[lmask]
            rk = rkeys[rmask]
            common, lidx, ridx = np.intersect1d(
                lk, rk, assume_unique=True, return_indices=True)
            if common.size:
                lsel = np.flatnonzero(lmask)[lidx]
                rsel = np.flatnonzero(rmask)[ridx]
                out = {k: v[lsel] for k, v in left_buf.items()}
                out.update({k: v[rsel] for k, v in right_buf.items()})
                yield out
            left_buf = (slice_batch(left_buf, ~lmask)
                        if not lmask.all() else None)
            right_buf = (slice_batch(right_buf, ~rmask)
                         if not rmask.all() else None)
            if left_buf is None or batch_length(left_buf) == 0:
                left_buf, left_done = refill(None, left_it, left_done)
                if left_buf is None:
                    return
            if right_buf is None or batch_length(right_buf) == 0:
                right_buf, right_done = refill(None, right_it, right_done)
                if right_buf is None:
                    return

    def _describe(self) -> str:
        return f"MergeJoin({self.left_key} = {self.right_key})"


class _HashSide:
    """Build-side state: payload sorted by key, probed via searchsorted."""

    def __init__(self, batch: Batch, key: str) -> None:
        keys = np.asarray(batch[key], dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.payload = {k: v[order] for k, v in batch.items()}

    def probe(self, probe_keys: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Return (probe_row_idx, build_row_idx) for all matches."""
        probes = np.asarray(probe_keys, dtype=np.int64)
        lo = np.searchsorted(self.keys, probes, side="left")
        hi = np.searchsorted(self.keys, probes, side="right")
        counts = hi - lo
        probe_idx = np.repeat(np.arange(probes.size), counts)
        build_idx = expand_ranges(lo, counts)
        return probe_idx, build_idx


class HashJoin(PhysOp):
    """Hash join: build the right input, stream the left as probe side.

    When the build side exceeds ``work_mem`` both inputs are partitioned by
    ``key mod P`` into temporary tables (grace hash join) and partitions are
    joined one at a time.  Partition I/O is charged to the shared device, so
    an oversized build side is *visible* in the experiment numbers.
    """

    def __init__(self, probe: PhysOp, build: PhysOp,
                 probe_key: str, build_key: str) -> None:
        self.children = (probe, build)
        self.probe_key = probe_key
        self.build_key = build_key
        self.schema = _combine_schemas(probe.schema, build.schema)
        self.partitions_used = 0  # exposed for tests

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        probe_op, build_op = self.children
        build_batches: list[Batch] = []
        build_bytes = 0
        spill = False
        build_it = build_op.execute(ctx)
        for batch in build_it:
            build_batches.append(batch)
            build_bytes += batch_bytes(batch)
            if build_bytes > ctx.work_mem_bytes:
                spill = True
                break
        if not spill:
            if not build_batches:
                return
            merged = {k: np.concatenate([b[k] for b in build_batches])
                      for k in build_batches[0]}
            side = _HashSide(merged, self.build_key)
            for batch in probe_op.execute(ctx):
                yield from self._emit(batch, side)
            return
        yield from self._grace(ctx, build_batches, build_it)

    def _emit(self, probe_batch: Batch, side: _HashSide) -> Iterator[Batch]:
        pidx, bidx = side.probe(probe_batch[self.probe_key])
        if pidx.size == 0:
            return
        out = {k: v[pidx] for k, v in probe_batch.items()}
        out.update({k: v[bidx] for k, v in side.payload.items()})
        yield out

    # ------------------------------------------------------------------
    def _grace(self, ctx: ExecContext, prefix: list[Batch], build_it
               ) -> Iterator[Batch]:
        probe_op, build_op = self.children
        n_parts = 8
        while True:
            est_total = sum(batch_bytes(b) for b in prefix) * 4
            if est_total / n_parts <= ctx.work_mem_bytes or n_parts >= 256:
                break
            n_parts *= 2
        self.partitions_used = n_parts

        def encoding(schema: Schema) -> dict[str, str]:
            # Positional names keep spill-table columns valid no matter how
            # the logical names are qualified.
            return {c.name: f"c{i}" for i, c in enumerate(schema.columns)}

        def partition(batches: Iterator[Batch], key: str, schema: Schema
                      ) -> tuple[list[HeapTable], dict[str, str]]:
            enc = encoding(schema)
            bare = schema.rename(enc)
            tables = [ctx.make_temp(bare) for _ in range(n_parts)]
            for batch in batches:
                keys = np.asarray(batch[key], dtype=np.int64)
                part = keys % n_parts
                for p in range(n_parts):
                    mask = part == p
                    if mask.any():
                        sub = slice_batch(batch, mask)
                        tables[p].append_batch(
                            {enc[k]: v for k, v in sub.items()})
            for t in tables:
                t.finish_append()
            return tables, {v: k for k, v in enc.items()}

        def chain(first: list[Batch], rest) -> Iterator[Batch]:
            yield from first
            yield from rest

        build_parts, build_dec = partition(
            chain(prefix, build_it), self.build_key,
            self.children[1].schema)
        probe_parts, probe_dec = partition(
            probe_op.execute(ctx), self.probe_key,
            self.children[0].schema)
        try:
            for p in range(n_parts):
                bt = build_parts[p]
                if bt.row_count == 0:
                    continue
                merged_parts = list(bt.scan())
                if not merged_parts:
                    continue
                merged = {build_dec[k]:
                          np.concatenate([b[k] for b in merged_parts])
                          for k in merged_parts[0]}
                side = _HashSide(merged, self.build_key)
                for batch in probe_parts[p].scan():
                    named = {probe_dec[k]: v for k, v in batch.items()}
                    yield from self._emit(named, side)
        finally:
            for t in build_parts + probe_parts:
                ctx.drop_temp(t)

    def _describe(self) -> str:
        return f"HashJoin({self.probe_key} = {self.build_key})"


class IndexNestedLoopJoin(PhysOp):
    """Probe a table's primary-key index with each outer key value.

    For every outer batch the probe keys are looked up in the B+tree (in
    sorted order, so upper index levels stay buffer-resident) and matching
    rows are fetched page by page.  With a 100-row outer (the sample ``S``),
    total I/O is a few hundred blocks regardless of the inner table's size —
    the mechanism behind the paper's orders-of-magnitude win.
    """

    def __init__(self, outer: PhysOp, inner_table: HeapTable, index,
                 inner_alias: str, outer_key: str) -> None:
        self.children = (outer,)
        self.inner_table = inner_table
        self.index = index
        self.inner_alias = inner_alias
        self.outer_key = outer_key
        mapping = {c.name: f"{inner_alias}.{c.name}"
                   for c in inner_table.schema.columns}
        self.schema = _combine_schemas(
            outer.schema, inner_table.schema.rename(mapping))
        self.sorted_on = self.children[0].sorted_on

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        for batch in self.children[0].execute(ctx):
            keys = np.asarray(batch[self.outer_key], dtype=np.int64)
            found, row_ids = self.index.tree.search_batch(keys)
            if not found.any():
                continue
            outer = slice_batch(batch, found)
            inner = self.inner_table.fetch_rows(row_ids[found])
            out = dict(outer)
            out.update({f"{self.inner_alias}.{name}": arr
                        for name, arr in inner.items()})
            yield out

    def _describe(self) -> str:
        return (f"IndexNestedLoopJoin({self.outer_key} -> "
                f"{self.inner_table.name}.{'.'.join(self.index.key_columns)}"
                f" AS {self.inner_alias})")
