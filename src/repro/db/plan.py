"""Logical query plans.

A plan is a tree of relational operators over tables, views, and literal
relations.  Plans are what RIOT-DB stores as view definitions; the optimizer
(``repro.db.optimizer``) expands views, pushes predicates, orders joins and
chooses physical operators, and the executor (``repro.db.executor``) runs the
physical tree in a pipelined, batch-at-a-time fashion — the execution model
whose intermediate-result avoidance §4.1 credits for RIOT-DB's wins.

Column naming convention: a :class:`Scan` qualifies every output column with
its alias (``E1.I``), while a :class:`Project` assigns explicit (usually
bare) output names.  View definitions end in a Project producing bare names;
expanding ``Scan(view, alias=A)`` wraps the stored plan so columns come out
as ``A.col``.
"""

from __future__ import annotations

import numpy as np

from .catalog import Catalog
from .schema import Batch, Column, Schema
from .sqlexpr import Col, Expr

#: Default selectivity guessed for an arbitrary filter predicate.
FILTER_SELECTIVITY = 0.33


class PlanNode:
    """Base class for logical plan operators."""

    children: tuple["PlanNode", ...] = ()

    def output_schema(self, catalog: Catalog) -> Schema:
        raise NotImplementedError

    def est_rows(self, catalog: Catalog) -> float:
        raise NotImplementedError

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        """Columns the output is known to be sorted by (may be empty)."""
        return ()

    def with_children(self, children: tuple["PlanNode", ...]) -> "PlanNode":
        raise NotImplementedError

    def to_sql(self, catalog: Catalog | None = None) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class Scan(PlanNode):
    """Scan of a base table or view, with an alias qualifying its columns."""

    def __init__(self, name: str, alias: str | None = None) -> None:
        self.name = name
        self.alias = alias or name

    def output_schema(self, catalog: Catalog) -> Schema:
        base = catalog.schema_of(self.name)
        mapping = {c.name: f"{self.alias}.{c.name}" for c in base.columns}
        return base.rename(mapping)

    def est_rows(self, catalog: Catalog) -> float:
        if catalog.is_table(self.name):
            return float(catalog.table(self.name).row_count)
        return catalog.view(self.name).est_rows(catalog)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        if catalog.is_table(self.name):
            clustered = catalog.table(self.name).clustered_on
            return tuple(f"{self.alias}.{c}" for c in clustered)
        return ()

    def with_children(self, children) -> "Scan":
        assert not children
        return Scan(self.name, self.alias)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        if self.alias != self.name:
            return f"{self.name} AS {self.alias}"
        return self.name


class Values(PlanNode):
    """A literal in-memory relation (e.g. the 100 sampled indexes S)."""

    def __init__(self, batch: Batch, schema: Schema,
                 name: str = "VALUES") -> None:
        self.batch = {k: np.asarray(v) for k, v in batch.items()}
        self.schema = schema
        self.name = name
        lengths = {arr.shape[0] for arr in self.batch.values()}
        if len(lengths) > 1:
            raise ValueError("ragged Values relation")

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.schema

    def est_rows(self, catalog: Catalog) -> float:
        for arr in self.batch.values():
            return float(arr.shape[0])
        return 0.0

    def with_children(self, children) -> "Values":
        assert not children
        return Values(self.batch, self.schema, self.name)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        return f"({self.name})"


class Filter(PlanNode):
    """Row selection by a boolean predicate."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.children = (child,)
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def est_rows(self, catalog: Catalog) -> float:
        return max(1.0, self.child.est_rows(catalog) * FILTER_SELECTIVITY)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        return self.child.ordering(catalog)

    def with_children(self, children) -> "Filter":
        (child,) = children
        return Filter(child, self.predicate)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        return (f"SELECT * FROM ({self.child.to_sql(catalog)}) "
                f"WHERE {self.predicate.to_sql()}")


class Project(PlanNode):
    """Compute named output expressions (the SELECT list)."""

    def __init__(self, child: PlanNode,
                 outputs: list[tuple[str, Expr]]) -> None:
        self.children = (child,)
        self.outputs = list(outputs)
        names = [n for n, _ in outputs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate output names: {names}")

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        cols = []
        for name, expr in self.outputs:
            cols.append(Column(name, _infer_type(expr, child_schema)))
        return Schema(tuple(cols))

    def est_rows(self, catalog: Catalog) -> float:
        return self.child.est_rows(catalog)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        child_order = self.child.ordering(catalog)
        if not child_order:
            return ()
        # The output stays sorted by the prefix of ordering columns that are
        # passed through as plain column references.
        passthrough = {expr.name: name for name, expr in self.outputs
                       if isinstance(expr, Col)}
        out: list[str] = []
        for col in child_order:
            if col in passthrough:
                out.append(passthrough[col])
            else:
                break
        return tuple(out)

    def with_children(self, children) -> "Project":
        (child,) = children
        return Project(child, self.outputs)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        select = ", ".join(f"{expr.to_sql()} AS {name}"
                           for name, expr in self.outputs)
        return f"SELECT {select} FROM ({self.child.to_sql(catalog)})"


class Join(PlanNode):
    """Inner equijoin on pairwise key equality."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: list[str], right_keys: list[str]) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("join needs matching non-empty key lists")
        self.children = (left, right)
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def output_schema(self, catalog: Catalog) -> Schema:
        lcols = self.left.output_schema(catalog).columns
        rcols = self.right.output_schema(catalog).columns
        return Schema(tuple(lcols) + tuple(rcols))

    def est_rows(self, catalog: Catalog) -> float:
        l, r = self.left.est_rows(catalog), self.right.est_rows(catalog)
        # Key-key equijoin heuristic: at most the smaller input when one
        # side's key is unique (always true for RIOT-DB's PK joins).
        return max(1.0, min(l, r))

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        # Conservative: physical operators that preserve order declare it
        # during physical planning, not here.
        return ()

    def with_children(self, children) -> "Join":
        left, right = children
        return Join(left, right, self.left_keys, self.right_keys)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        conds = " AND ".join(f"{l} = {r}" for l, r in
                             zip(self.left_keys, self.right_keys))
        return (f"SELECT * FROM ({self.left.to_sql(catalog)}) JOIN "
                f"({self.right.to_sql(catalog)}) ON {conds}")


_AGG_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


class GroupAgg(PlanNode):
    """Grouped aggregation: GROUP BY ``group_keys`` computing ``aggs``.

    ``aggs`` is a list of ``(output_name, func, input_expr)`` with func in
    SUM | COUNT | AVG | MIN | MAX.  An empty ``group_keys`` computes a single
    global aggregate row.
    """

    def __init__(self, child: PlanNode, group_keys: list[str],
                 aggs: list[tuple[str, str, Expr]]) -> None:
        self.children = (child,)
        self.group_keys = list(group_keys)
        for _, func, _ in aggs:
            if func.upper() not in _AGG_FUNCS:
                raise ValueError(f"unknown aggregate {func!r}")
        self.aggs = [(name, func.upper(), expr) for name, func, expr in aggs]

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        cols = []
        for key in self.group_keys:
            base = child_schema.column(key)
            cols.append(Column(_bare(key), base.type))
        for name, func, _expr in self.aggs:
            if func == "COUNT":
                cols.append(Column(name, "INT"))
            else:
                cols.append(Column(name, "DOUBLE"))
        return Schema(tuple(cols))

    def est_rows(self, catalog: Catalog) -> float:
        if not self.group_keys:
            return 1.0
        return max(1.0, self.child.est_rows(catalog) * 0.1)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        # Sort-based aggregation emits groups in key order.
        return tuple(_bare(k) for k in self.group_keys)

    def with_children(self, children) -> "GroupAgg":
        (child,) = children
        return GroupAgg(child, self.group_keys, self.aggs)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        select = ", ".join(
            [f"{k} AS {_bare(k)}" for k in self.group_keys]
            + [f"{func}({expr.to_sql()}) AS {name}"
               for name, func, expr in self.aggs])
        sql = f"SELECT {select} FROM ({self.child.to_sql(catalog)})"
        if self.group_keys:
            sql += f" GROUP BY {', '.join(self.group_keys)}"
        return sql


class Sort(PlanNode):
    """ORDER BY (ascending on each key, in key-list order)."""

    def __init__(self, child: PlanNode, keys: list[str]) -> None:
        if not keys:
            raise ValueError("sort needs at least one key")
        self.children = (child,)
        self.keys = list(keys)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def est_rows(self, catalog: Catalog) -> float:
        return self.child.est_rows(catalog)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        return tuple(self.keys)

    def with_children(self, children) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        return (f"SELECT * FROM ({self.child.to_sql(catalog)}) "
                f"ORDER BY {', '.join(self.keys)}")


class Limit(PlanNode):
    """Emit at most ``n`` rows."""

    def __init__(self, child: PlanNode, n: int) -> None:
        if n < 0:
            raise ValueError(f"limit must be >= 0, got {n}")
        self.children = (child,)
        self.n = n

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def est_rows(self, catalog: Catalog) -> float:
        return float(min(self.n, self.child.est_rows(catalog)))

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        return self.child.ordering(catalog)

    def with_children(self, children) -> "Limit":
        (child,) = children
        return Limit(child, self.n)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        return (f"SELECT * FROM ({self.child.to_sql(catalog)}) "
                f"LIMIT {self.n}")


class Rename(PlanNode):
    """Rename output columns (used when expanding aliased view scans)."""

    def __init__(self, child: PlanNode, mapping: dict[str, str]) -> None:
        self.children = (child,)
        self.mapping = dict(mapping)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog).rename(self.mapping)

    def est_rows(self, catalog: Catalog) -> float:
        return self.child.est_rows(catalog)

    def ordering(self, catalog: Catalog) -> tuple[str, ...]:
        return tuple(self.mapping.get(c, c)
                     for c in self.child.ordering(catalog))

    def with_children(self, children) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def to_sql(self, catalog: Catalog | None = None) -> str:
        select = ", ".join(f"{old} AS {new}"
                           for old, new in self.mapping.items())
        return f"SELECT {select} FROM ({self.child.to_sql(catalog)})"


def _bare(name: str) -> str:
    """Strip an alias qualifier: 'E1.I' -> 'I'."""
    return name.split(".")[-1]


def _infer_type(expr: Expr, schema: Schema) -> str:
    """Infer INT vs DOUBLE for a projected expression (best effort)."""
    from . import sqlexpr as sx

    if isinstance(expr, sx.Col):
        try:
            return _resolve_schema_column(expr.name, schema).type
        except KeyError:
            return "DOUBLE"
    if isinstance(expr, sx.Const):
        return "INT" if isinstance(expr.value, (int, np.integer)) \
            and not isinstance(expr.value, bool) else "DOUBLE"
    if isinstance(expr, sx.Arith):
        lt = _infer_type(expr.left, schema)
        rt = _infer_type(expr.right, schema)
        if expr.op == "/":
            return "DOUBLE"
        return "INT" if lt == "INT" and rt == "INT" else "DOUBLE"
    if isinstance(expr, sx.CaseWhen):
        lt = _infer_type(expr.then, schema)
        rt = _infer_type(expr.otherwise, schema)
        return "INT" if lt == "INT" and rt == "INT" else "DOUBLE"
    if isinstance(expr, (sx.Cmp, sx.And, sx.Or, sx.Not, sx.InSet)):
        return "INT"
    return "DOUBLE"


def _resolve_schema_column(name: str, schema: Schema) -> Column:
    if schema.has_column(name):
        return schema.column(name)
    suffix = "." + name.split(".")[-1]
    matches = [c for c in schema.columns if c.name.endswith(suffix)
               or c.name == name.split(".")[-1]]
    if len(matches) == 1:
        return matches[0]
    raise KeyError(f"cannot resolve column {name!r} in {schema.names}")


def walk(plan: PlanNode):
    """Yield every node of a plan tree, pre-order."""
    yield plan
    for child in plan.children:
        yield from walk(child)
