"""Scalar expressions evaluated over columnar batches.

These are the SELECT-list and WHERE-clause expressions of the relational
substrate.  Evaluation is vectorized: an expression maps a batch (dict of
numpy columns) to a numpy array.  ``to_sql`` renders the expression as SQL
text so demos and tests can display the views RIOT-DB builds, exactly like
the listings in §4 of the paper.

Column references may be qualified (``E1.I``) or bare (``I``); bare names
resolve against a batch by exact match first, then by unique suffix match.
"""

from __future__ import annotations

import numpy as np

from .schema import Batch


class Expr:
    """Base class for scalar expressions."""

    def eval(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns referenced by this expression."""
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        """Return a copy with column references renamed via ``mapping``."""
        raise NotImplementedError

    # Operator sugar so engines can compose expressions naturally ------
    def __add__(self, other: "Expr") -> "Expr":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other: "Expr") -> "Expr":
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other: "Expr") -> "Expr":
        return Arith("/", self, _wrap(other))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}: {self.to_sql()}>"


def _wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value)


def resolve_column(name: str, batch: Batch) -> np.ndarray:
    """Resolve a possibly-qualified column name in a batch."""
    if name in batch:
        return batch[name]
    suffix = "." + name.split(".")[-1] if "." not in name else None
    if suffix is not None:
        matches = [k for k in batch if k.endswith(suffix)]
        if len(matches) == 1:
            return batch[matches[0]]
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous column {name!r}: matches {sorted(matches)}")
    # Qualified name referenced where batch holds bare names.
    bare = name.split(".")[-1]
    if bare != name and bare in batch:
        return batch[bare]
    raise KeyError(
        f"no column {name!r} in batch with columns {sorted(batch)}")


class Col(Expr):
    """A column reference."""

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, batch: Batch) -> np.ndarray:
        return resolve_column(self.name, batch)

    def columns(self) -> set[str]:
        return {self.name}

    def to_sql(self) -> str:
        return self.name

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Col(mapping.get(self.name, self.name))


class Const(Expr):
    """A numeric literal."""

    def __init__(self, value: float) -> None:
        self.value = value

    def eval(self, batch: Batch) -> np.ndarray:
        return np.asarray(self.value)

    def columns(self) -> set[str]:
        return set()

    def to_sql(self) -> str:
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return repr(self.value)

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return self


_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


class Arith(Expr):
    """Binary arithmetic: + - * / %."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, batch: Batch) -> np.ndarray:
        return _ARITH_OPS[self.op](self.left.eval(batch),
                                   self.right.eval(batch))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Arith(self.op, self.left.rename_columns(mapping),
                     self.right.rename_columns(mapping))


def _np_pow(base, exp):
    return np.power(np.asarray(base, dtype=np.float64), exp)


_FUNCS = {
    "SQRT": (1, lambda a: np.sqrt(np.asarray(a, dtype=np.float64))),
    "POW": (2, _np_pow),
    "ABS": (1, np.abs),
    "EXP": (1, np.exp),
    "LN": (1, np.log),
    "FLOOR": (1, np.floor),
    "CEIL": (1, np.ceil),
    "NEG": (1, np.negative),
    "SIGN": (1, np.sign),
}


class Func(Expr):
    """Scalar function call (SQRT, POW, ABS, EXP, LN, ...)."""

    def __init__(self, name: str, *args: Expr) -> None:
        name = name.upper()
        if name not in _FUNCS:
            raise ValueError(f"unknown function {name!r}")
        arity, _ = _FUNCS[name]
        if len(args) != arity:
            raise ValueError(
                f"{name} expects {arity} argument(s), got {len(args)}")
        self.name = name
        self.args = tuple(args)

    def eval(self, batch: Batch) -> np.ndarray:
        _, fn = _FUNCS[self.name]
        return fn(*(a.eval(batch) for a in self.args))

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.columns()
        return out

    def to_sql(self) -> str:
        if self.name == "NEG":
            return f"(-{self.args[0].to_sql()})"
        return f"{self.name}({', '.join(a.to_sql() for a in self.args)})"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Func(self.name,
                    *(a.rename_columns(mapping) for a in self.args))


_CMP_OPS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class Cmp(Expr):
    """Comparison producing a boolean column."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, batch: Batch) -> np.ndarray:
        return _CMP_OPS[self.op](self.left.eval(batch),
                                 self.right.eval(batch))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Cmp(self.op, self.left.rename_columns(mapping),
                   self.right.rename_columns(mapping))


class And(Expr):
    """Conjunction of boolean expressions."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise ValueError("And needs at least one term")
        self.terms = tuple(terms)

    def eval(self, batch: Batch) -> np.ndarray:
        out = self.terms[0].eval(batch)
        for term in self.terms[1:]:
            out = np.logical_and(out, term.eval(batch))
        return out

    def columns(self) -> set[str]:
        out: set[str] = set()
        for t in self.terms:
            out |= t.columns()
        return out

    def to_sql(self) -> str:
        return " AND ".join(t.to_sql() for t in self.terms)

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return And(*(t.rename_columns(mapping) for t in self.terms))


class Or(Expr):
    """Disjunction of boolean expressions."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise ValueError("Or needs at least one term")
        self.terms = tuple(terms)

    def eval(self, batch: Batch) -> np.ndarray:
        out = self.terms[0].eval(batch)
        for term in self.terms[1:]:
            out = np.logical_or(out, term.eval(batch))
        return out

    def columns(self) -> set[str]:
        out: set[str] = set()
        for t in self.terms:
            out |= t.columns()
        return out

    def to_sql(self) -> str:
        return "(" + " OR ".join(t.to_sql() for t in self.terms) + ")"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Or(*(t.rename_columns(mapping) for t in self.terms))


class Not(Expr):
    """Boolean negation."""

    def __init__(self, term: Expr) -> None:
        self.term = term

    def eval(self, batch: Batch) -> np.ndarray:
        return np.logical_not(self.term.eval(batch))

    def columns(self) -> set[str]:
        return self.term.columns()

    def to_sql(self) -> str:
        return f"NOT ({self.term.to_sql()})"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return Not(self.term.rename_columns(mapping))


class CaseWhen(Expr):
    """``CASE WHEN cond THEN a ELSE b END`` — how RIOT-DB expresses the
    deferred modification ``b[b>100] <- 100`` relationally."""

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def eval(self, batch: Batch) -> np.ndarray:
        cond = self.cond.eval(batch)
        return np.where(cond, self.then.eval(batch),
                        self.otherwise.eval(batch))

    def columns(self) -> set[str]:
        return (self.cond.columns() | self.then.columns()
                | self.otherwise.columns())

    def to_sql(self) -> str:
        return (f"CASE WHEN {self.cond.to_sql()} THEN {self.then.to_sql()} "
                f"ELSE {self.otherwise.to_sql()} END")

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return CaseWhen(self.cond.rename_columns(mapping),
                        self.then.rename_columns(mapping),
                        self.otherwise.rename_columns(mapping))


class InSet(Expr):
    """Membership test against a small literal set (optimizer helper)."""

    def __init__(self, expr: Expr, values: np.ndarray) -> None:
        self.expr = expr
        self.values = np.asarray(values)

    def eval(self, batch: Batch) -> np.ndarray:
        return np.isin(self.expr.eval(batch), self.values)

    def columns(self) -> set[str]:
        return self.expr.columns()

    def to_sql(self) -> str:
        vals = ", ".join(str(v) for v in self.values.tolist()[:8])
        suffix = ", ..." if self.values.size > 8 else ""
        return f"{self.expr.to_sql()} IN ({vals}{suffix})"

    def rename_columns(self, mapping: dict[str, str]) -> "Expr":
        return InSet(self.expr.rename_columns(mapping), self.values)


def split_conjuncts(pred: Expr) -> list[Expr]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(pred, And):
        out: list[Expr] = []
        for term in pred.terms:
            out.extend(split_conjuncts(term))
        return out
    return [pred]


def conjoin(preds: list[Expr]) -> Expr | None:
    """Combine conjuncts back into one predicate (None when empty)."""
    if not preds:
        return None
    if len(preds) == 1:
        return preds[0]
    return And(*preds)
