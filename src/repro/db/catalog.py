"""Catalog: tables, primary-key indexes, and views.

The view catalog is the heart of RIOT-DB (§4.1): *"We map each RIOT-DB
object to a database table or view. The result of operating on RIOT-DB
objects becomes a view, whose definition encapsulates the computation
involved in generating this result."*  Views here store a logical plan; the
optimizer expands view references by inlining that plan, which is exactly
SQL view expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .btree import BPlusTree, KeyCodec
from .schema import Schema
from .table import HeapTable


@dataclass
class TableIndex:
    """A B+tree over a table's (possibly composite) key columns."""

    table_name: str
    key_columns: tuple[str, ...]
    codec: KeyCodec
    tree: BPlusTree

    def pack_keys(self, *cols: np.ndarray) -> np.ndarray:
        return self.codec.pack(*cols)


class Catalog:
    """Name -> object mapping for tables, indexes, and views."""

    def __init__(self) -> None:
        self.tables: dict[str, HeapTable] = {}
        self.indexes: dict[str, TableIndex] = {}
        self.views: dict[str, "object"] = {}  # name -> PlanNode
        self._temp_counter = 0

    # ------------------------------------------------------------------
    def register_table(self, table: HeapTable) -> None:
        if table.name in self.tables or table.name in self.views:
            raise ValueError(f"name {table.name!r} already in use")
        self.tables[table.name] = table

    def register_index(self, index: TableIndex) -> None:
        self.indexes[index.table_name] = index

    def register_view(self, name: str, plan) -> None:
        if name in self.tables or name in self.views:
            raise ValueError(f"name {name!r} already in use")
        self.views[name] = plan

    # ------------------------------------------------------------------
    def is_table(self, name: str) -> bool:
        return name in self.tables

    def is_view(self, name: str) -> bool:
        return name in self.views

    def table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def view(self, name: str):
        try:
            return self.views[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def index_on(self, table_name: str) -> TableIndex | None:
        return self.indexes.get(table_name)

    def schema_of(self, name: str) -> Schema:
        """Schema of a table or a view (bare column names)."""
        if name in self.tables:
            return self.tables[name].schema
        if name in self.views:
            return self.views[name].output_schema(self)
        raise KeyError(f"no table or view named {name!r}")

    # ------------------------------------------------------------------
    def drop(self, name: str) -> None:
        if name in self.views:
            del self.views[name]
            return
        if name in self.tables:
            self.tables[name].drop()
            del self.tables[name]
            self.indexes.pop(name, None)
            return
        raise KeyError(f"no table or view named {name!r}")

    def fresh_temp_name(self, prefix: str = "tmp") -> str:
        self._temp_counter += 1
        return f"__{prefix}_{self._temp_counter}"

    def names(self) -> list[str]:
        return sorted(self.tables) + sorted(self.views)
