"""Column types and table schemas for the relational substrate.

The engine supports exactly the data model RIOT-DB needs: fixed-width
8-byte columns, either 64-bit integers (array indexes ``I``, ``J``, ...) or
64-bit floats (the value column ``V``).  This is the "(I1, ..., In, V)"
representation of §4 whose storage overhead the paper measures against plain
R's raw arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Bytes used by every column value (both INT and DOUBLE are 8 bytes).
COLUMN_BYTES = 8


class ColumnType:
    """Enumeration of supported column types."""

    INT = "INT"
    DOUBLE = "DOUBLE"

    _DTYPES = {INT: np.int64, DOUBLE: np.float64}

    @classmethod
    def dtype(cls, type_name: str) -> np.dtype:
        try:
            return np.dtype(cls._DTYPES[type_name])
        except KeyError:
            raise ValueError(f"unknown column type {type_name!r}") from None

    @classmethod
    def validate(cls, type_name: str) -> str:
        if type_name not in cls._DTYPES:
            raise ValueError(f"unknown column type {type_name!r}")
        return type_name


@dataclass(frozen=True)
class Column:
    """One column: a name and a type."""

    name: str
    type: str

    def __post_init__(self) -> None:
        ColumnType.validate(self.type)

    @property
    def dtype(self) -> np.dtype:
        return ColumnType.dtype(self.type)


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns, with optional primary-key columns.

    ``primary_key`` names the clustering columns: rows are stored in
    primary-key order and a B+tree index over the key is maintained, the way
    RIOT-DB declares ``I`` (or ``(I, J)``) as the primary key of every array
    table.
    """

    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        for key in self.primary_key:
            if key not in names:
                raise ValueError(
                    f"primary key column {key!r} not in schema {names}")

    @staticmethod
    def of(*cols: tuple[str, str], primary_key: tuple[str, ...] = ()
           ) -> "Schema":
        """Convenience: ``Schema.of(("I","INT"), ("V","DOUBLE"))``."""
        return Schema(tuple(Column(n, t) for n, t in cols),
                      primary_key=tuple(primary_key))

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def width(self) -> int:
        return len(self.columns)

    @property
    def row_bytes(self) -> int:
        return self.width * COLUMN_BYTES

    def index_of(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column {name!r} in {self.names}")

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed via ``mapping``."""
        cols = tuple(Column(mapping.get(c.name, c.name), c.type)
                     for c in self.columns)
        pk = tuple(mapping.get(k, k) for k in self.primary_key)
        return Schema(cols, primary_key=pk)


#: A batch of rows in columnar form: column name -> numpy array.  All arrays
#: in one batch have equal length.  This is the unit of data flow through the
#: vectorized executor.
Batch = dict[str, np.ndarray]


def batch_length(batch: Batch) -> int:
    """Number of rows in a batch (0 for an empty dict)."""
    for arr in batch.values():
        return int(arr.shape[0])
    return 0


def empty_batch(schema: Schema) -> Batch:
    return {c.name: np.empty(0, dtype=c.dtype) for c in schema.columns}


def slice_batch(batch: Batch, mask_or_index: np.ndarray) -> Batch:
    """Row-select every column of a batch with a mask or index array."""
    return {name: arr[mask_or_index] for name, arr in batch.items()}


def concat_batches(batches: list[Batch], schema: Schema) -> Batch:
    """Concatenate batches into one (used by small materializations)."""
    if not batches:
        return empty_batch(schema)
    return {name: np.concatenate([b[name] for b in batches])
            for name in batches[0]}
