"""Database facade: DDL, bulk load, views, query execution, I/O accounting.

One :class:`Database` is the complete stand-in for the MySQL server behind
RIOT-DB: a shared block device (counted I/O), a bounded buffer pool (the
memory cap), a catalog of tables/indexes/views, the optimizer, and the
vectorized executor.  Engines in :mod:`repro.engines` talk only to this
facade.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.storage import (BufferPool, DEFAULT_BLOCK_SIZE, IOStats,
                           StorageConfig, create_device, new_pagefile)

from .btree import BPlusTree, KeyCodec
from .catalog import Catalog, TableIndex
from .executor import ExecContext, MaterializeOp, PhysOp, run_to_batch
from .optimizer import Optimizer
from .plan import PlanNode
from .schema import Batch, Schema
from .table import HeapTable


class Database:
    """An embedded relational engine with exact I/O accounting."""

    def __init__(self, memory_bytes: int | None = None,
                 block_size: int | None = None,
                 work_mem_bytes: int | None = None,
                 policy: str | None = None, name: str = "riotdb",
                 storage: StorageConfig | None = None) -> None:
        """``storage`` injects the full storage contract (backend, page
        file path, budget); the classic keyword arguments override its
        corresponding fields and default to the in-memory simulator."""
        if storage is None:
            storage = StorageConfig()
        overrides = {k: v for k, v in (
            ("memory_bytes", memory_bytes), ("block_size", block_size),
            ("policy", policy)) if v is not None}
        if overrides:
            storage = storage.with_options(**overrides)
        self.storage = storage
        memory_bytes = storage.memory_bytes
        block_size = storage.block_size
        self.device = create_device(storage, name=name)
        capacity = max(8, memory_bytes // block_size)
        self.pool = BufferPool(self.device, capacity,
                               policy=storage.policy)
        self.catalog = Catalog()
        # Operators get a quarter of memory as working space by default,
        # mirroring a sort/join buffer configuration.
        work_mem = work_mem_bytes or max(memory_bytes // 4, block_size * 8)
        self.ctx = ExecContext(self, work_mem_bytes=work_mem)
        self.optimizer = Optimizer(self.catalog)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> HeapTable:
        file = new_pagefile(self.device, name=name)
        table = HeapTable(name, schema, file, self.pool)
        self.catalog.register_table(table)
        return table

    def load_table(self, name: str, schema: Schema, batch: Batch,
                   build_index: bool = True) -> HeapTable:
        """Create a table, bulk-load rows, and index the primary key.

        Rows must arrive in primary-key order (RIOT-DB generates them that
        way); the table is marked clustered on the key and a B+tree over the
        packed key is bulk-loaded.  Index pages are written through the
        buffer pool, so index construction I/O is charged like MySQL's.
        """
        table = self.create_table(name, schema)
        table.load(batch, clustered_on=schema.primary_key)
        if build_index and schema.primary_key:
            self._build_pk_index(table, batch)
        return table

    def _build_pk_index(self, table: HeapTable, batch: Batch) -> None:
        key_cols = table.schema.primary_key
        parts = [np.asarray(batch[k], dtype=np.int64) for k in key_cols]
        dims = tuple(int(p.max()) + 1 if p.size else 1 for p in parts)
        codec = KeyCodec(dims)
        keys = codec.pack(*parts)
        file = new_pagefile(self.device, name=f"{table.name}__pk")
        tree = BPlusTree(file, self.pool, name=f"{table.name}__pk")
        tree.bulk_load(keys, np.arange(keys.size, dtype=np.int64))
        self.catalog.register_index(
            TableIndex(table.name, tuple(key_cols), codec, tree))

    def create_view(self, name: str, plan: PlanNode) -> None:
        self.catalog.register_view(name, plan)

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    # ------------------------------------------------------------------
    # Temp space for spills
    # ------------------------------------------------------------------
    def create_temp_table(self, schema: Schema) -> HeapTable:
        name = self.catalog.fresh_temp_name()
        file = new_pagefile(self.device, name=name)
        return HeapTable(name, schema, file, self.pool)

    def drop_temp_table(self, table: HeapTable) -> None:
        table.drop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def physical_plan(self, plan: PlanNode) -> PhysOp:
        return self.optimizer.optimize(plan)

    def explain(self, plan: PlanNode) -> str:
        return self.physical_plan(plan).explain()

    def execute(self, plan: PlanNode) -> Iterator[Batch]:
        """Optimize and run a plan, streaming result batches."""
        yield from self.physical_plan(plan).execute(self.ctx)

    def query(self, plan: PlanNode) -> Batch:
        """Run a plan and collect the whole result (small results only)."""
        return run_to_batch(self.physical_plan(plan), self.ctx)

    def materialize(self, plan: PlanNode, name: str,
                    build_index: bool = False,
                    primary_key: tuple[str, ...] | None = None
                    ) -> HeapTable:
        """Evaluate a plan into a new table (CREATE TABLE AS SELECT).

        With ``build_index=True`` the key columns (``primary_key`` bare
        names, defaulting to the first output column) become the table's
        primary key; output must arrive in key order (which merge-join and
        sort-aggregate pipelines guarantee), the table is marked clustered,
        and a B+tree is bulk-loaded over the packed key — what
        RIOT-DB/MatNamed does for every named object.
        """
        phys = self.physical_plan(plan)
        bare_names = [c.name.split(".")[-1] for c in phys.schema.columns]
        keys_named = tuple(primary_key or bare_names[:1]) \
            if build_index else ()
        bare = Schema(
            tuple(type(c)(bn, c.type)
                  for bn, c in zip(bare_names, phys.schema.columns)),
            primary_key=keys_named)
        table = self.create_table(name, bare)
        op = MaterializeOp(phys, table)
        for _ in op.execute(self.ctx):
            pass
        if build_index:
            parts: dict[str, list[np.ndarray]] = {k: [] for k in keys_named}
            for batch in table.scan():
                for k in keys_named:
                    parts[k].append(np.asarray(batch[k], dtype=np.int64))
            cols = [np.concatenate(parts[k]) if parts[k]
                    else np.empty(0, dtype=np.int64) for k in keys_named]
            dims = tuple(int(c.max()) + 1 if c.size else 1 for c in cols)
            codec = KeyCodec(dims)
            keys = codec.pack(*cols)
            # The heap keeps arrival order; the index sorts (key, rowid)
            # pairs, so out-of-order output still gets a valid B+tree —
            # the table is only marked clustered when rows arrived sorted.
            perm = np.argsort(keys, kind="stable")
            keys_sorted = keys[perm]
            if keys_sorted.size > 1 and not np.all(
                    np.diff(keys_sorted) > 0):
                raise ValueError(
                    f"cannot index {name!r}: duplicate key values")
            arrived_sorted = bool(
                np.all(perm == np.arange(perm.size)))
            table.clustered_on = keys_named if arrived_sorted else ()
            file = new_pagefile(self.device, name=f"{name}__pk")
            tree = BPlusTree(file, self.pool, name=f"{name}__pk")
            tree.bulk_load(keys_sorted, perm.astype(np.int64))
            self.catalog.register_index(
                TableIndex(name, keys_named, codec, tree))
        return table

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    def reset_stats(self) -> None:
        self.device.reset_stats()

    def flush(self) -> None:
        self.pool.flush_all()

    def table(self, name: str) -> HeapTable:
        return self.catalog.table(name)

    def view_sql(self, name: str) -> str:
        """Render a stored view definition as SQL (demo/debugging)."""
        return (f"CREATE VIEW {name} AS "
                f"{self.catalog.view(name).to_sql(self.catalog)}")
