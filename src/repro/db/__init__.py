"""Embedded relational engine: the MySQL stand-in behind RIOT-DB.

Provides paged heap tables, B+tree primary-key indexes, a view catalog, a
rule+cost optimizer, and a vectorized pipelined executor — everything §4 of
the paper needs from its backend, with every block of I/O counted.
"""

from .btree import BPlusTree, KeyCodec
from .catalog import Catalog, TableIndex
from .database import Database
from .executor import ExecContext, PhysOp, run_to_batch
from .plan import (Filter, GroupAgg, Join, Limit, PlanNode, Project, Rename,
                   Scan, Sort, Values, walk)
from .schema import Batch, Column, ColumnType, Schema
from .sqlexpr import (And, Arith, CaseWhen, Cmp, Col, Const, Expr, Func,
                      InSet, Not, Or, conjoin, split_conjuncts)
from .table import HeapTable

__all__ = [
    "And", "Arith", "BPlusTree", "Batch", "CaseWhen", "Catalog", "Cmp",
    "Col", "Column", "ColumnType", "Const", "Database", "ExecContext",
    "Expr", "Filter", "Func", "GroupAgg", "HeapTable", "InSet", "Join",
    "KeyCodec", "Limit", "Not", "Or", "PhysOp", "PlanNode", "Project",
    "Rename", "Scan", "Schema", "Sort", "TableIndex", "Values", "conjoin",
    "run_to_batch", "split_conjuncts", "walk",
]
