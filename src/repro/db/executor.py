"""Vectorized pipelined execution (volcano model, batch-at-a-time).

Physical operators produce iterators of columnar batches.  One batch per
operator is in flight at a time, which is the property §4.1 relies on:
*"Leveraging this execution model, RIOT-DB effectively pipelines processing
among plan operators, and eliminates the need to materialize intermediate
results."*

Blocking operators (external sort, hash-join build) respect a ``work_mem``
budget and spill runs/partitions to temporary heap tables whose I/O goes
through the shared counted device — so the cost of *choosing a bad plan* is
visible in the Figure-1 numbers, just as it was for MySQL.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .schema import Batch, Schema, batch_length, slice_batch
from .sqlexpr import Expr
from .table import HeapTable

#: Pages fetched per scan batch.
SCAN_BATCH_PAGES = 16


class ExecContext:
    """Everything physical operators need at run time."""

    def __init__(self, db, work_mem_bytes: int = 16 * 1024 * 1024,
                 batch_rows: int = 8192) -> None:
        self.db = db
        self.work_mem_bytes = work_mem_bytes
        self.batch_rows = batch_rows

    def make_temp(self, schema: Schema) -> HeapTable:
        return self.db.create_temp_table(schema)

    def drop_temp(self, table: HeapTable) -> None:
        self.db.drop_temp_table(table)


class PhysOp:
    """Base class for physical operators."""

    #: Qualified output schema.
    schema: Schema
    #: Columns the output is sorted by (may be empty).
    sorted_on: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Readable physical plan tree (the EXPLAIN output)."""
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in getattr(self, "children", ()):
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
class SeqScan(PhysOp):
    """Full scan of a heap table, qualifying columns with the alias."""

    def __init__(self, table: HeapTable, alias: str) -> None:
        self.table = table
        self.alias = alias
        mapping = {c.name: f"{alias}.{c.name}"
                   for c in table.schema.columns}
        self.schema = table.schema.rename(mapping)
        self.sorted_on = tuple(f"{alias}.{c}" for c in table.clustered_on)
        self.children = ()

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        for batch in self.table.scan(batch_pages=SCAN_BATCH_PAGES):
            yield {f"{self.alias}.{name}": arr
                   for name, arr in batch.items()}

    def _describe(self) -> str:
        return f"SeqScan({self.table.name} AS {self.alias})"


class IndexRangeScan(PhysOp):
    """Clustered-index range scan: keys in [lo, hi] on the PK index.

    This is the access path behind ``b[1:10]``-style contiguous subscripts:
    it touches only the index pages plus the data pages holding the range.
    """

    def __init__(self, table: HeapTable, index, alias: str,
                 lo: int | None, hi: int | None) -> None:
        self.table = table
        self.index = index
        self.alias = alias
        self.lo = lo
        self.hi = hi
        mapping = {c.name: f"{alias}.{c.name}"
                   for c in table.schema.columns}
        self.schema = table.schema.rename(mapping)
        self.sorted_on = tuple(f"{alias}.{c}" for c in table.clustered_on)
        self.children = ()

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        for _keys, row_ids in self.index.tree.range_scan(self.lo, self.hi):
            rows = self.table.fetch_rows(row_ids)
            yield {f"{self.alias}.{name}": arr
                   for name, arr in rows.items()}

    def _describe(self) -> str:
        return (f"IndexRangeScan({self.table.name} AS {self.alias}, "
                f"[{self.lo}, {self.hi}])")


class ValuesOp(PhysOp):
    """A literal relation emitted as a single batch."""

    def __init__(self, batch: Batch, schema: Schema) -> None:
        self.batch = batch
        self.schema = schema
        self.children = ()

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        if batch_length(self.batch):
            yield dict(self.batch)

    def _describe(self) -> str:
        return f"Values({batch_length(self.batch)} rows)"


# ----------------------------------------------------------------------
# Streaming unary operators
# ----------------------------------------------------------------------
class FilterOp(PhysOp):
    """Apply a predicate to each batch."""

    def __init__(self, child: PhysOp, predicate: Expr) -> None:
        self.children = (child,)
        self.predicate = predicate
        self.schema = child.schema
        self.sorted_on = child.sorted_on

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        for batch in self.children[0].execute(ctx):
            mask = np.asarray(self.predicate.eval(batch), dtype=bool)
            if mask.all():
                yield batch
            elif mask.any():
                yield slice_batch(batch, mask)

    def _describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


class ProjectOp(PhysOp):
    """Evaluate the SELECT list on each batch."""

    def __init__(self, child: PhysOp, outputs: list[tuple[str, Expr]],
                 schema: Schema) -> None:
        self.children = (child,)
        self.outputs = outputs
        self.schema = schema
        # Ordering survives through passthrough column references.
        from .sqlexpr import Col
        passthrough = {expr.name: name for name, expr in outputs
                       if isinstance(expr, Col)}
        kept: list[str] = []
        for col in child.sorted_on:
            if col in passthrough:
                kept.append(passthrough[col])
            else:
                break
        self.sorted_on = tuple(kept)

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        for batch in self.children[0].execute(ctx):
            n = batch_length(batch)
            out: Batch = {}
            for (name, expr), col in zip(self.outputs,
                                         self.schema.columns):
                vals = np.asarray(expr.eval(batch))
                if vals.ndim == 0:
                    vals = np.full(n, vals[()])
                out[name] = np.ascontiguousarray(vals, dtype=col.dtype)
            yield out

    def _describe(self) -> str:
        cols = ", ".join(name for name, _ in self.outputs)
        return f"Project({cols})"


class LimitOp(PhysOp):
    """Emit at most n rows, then stop pulling from the child."""

    def __init__(self, child: PhysOp, n: int) -> None:
        self.children = (child,)
        self.n = n
        self.schema = child.schema
        self.sorted_on = child.sorted_on

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        remaining = self.n
        if remaining <= 0:
            return
        for batch in self.children[0].execute(ctx):
            n = batch_length(batch)
            if n <= remaining:
                yield batch
                remaining -= n
            else:
                yield slice_batch(batch, np.arange(remaining))
                remaining = 0
            if remaining == 0:
                return

    def _describe(self) -> str:
        return f"Limit({self.n})"


# ----------------------------------------------------------------------
# Sorting
# ----------------------------------------------------------------------
def lexsort_batch(batch: Batch, keys: list[str]) -> np.ndarray:
    """Row order sorting ``batch`` ascending by ``keys`` (stable)."""
    arrays = [np.asarray(batch[k]) for k in reversed(keys)]
    return np.lexsort(arrays)


def lex_leq(cols: list[np.ndarray], bound: tuple) -> np.ndarray:
    """Vectorized lexicographic ``row <= bound`` over parallel key columns."""
    n = cols[0].shape[0]
    lt = np.zeros(n, dtype=bool)
    eq = np.ones(n, dtype=bool)
    for col, b in zip(cols, bound):
        lt |= eq & (col < b)
        eq &= col == b
    return lt | eq


def batch_bytes(batch: Batch) -> int:
    return sum(arr.nbytes for arr in batch.values())


class ExternalSortOp(PhysOp):
    """Sort by run generation + streaming multi-way merge.

    Runs up to ``work_mem`` are sorted in memory; if the whole input fits in
    one run nothing is spilled.  Otherwise runs go to temp tables and a
    vectorized merge emits rows up to the least last-loaded key of any open
    run per round — memory stays bounded by one buffered batch per run.
    """

    def __init__(self, child: PhysOp, keys: list[str]) -> None:
        self.children = (child,)
        self.keys = list(keys)
        self.schema = child.schema
        self.sorted_on = tuple(keys)
        self.spilled_runs = 0  # exposed for tests/EXPLAIN

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        child = self.children[0]
        pending: list[Batch] = []
        pending_bytes = 0
        runs: list[HeapTable] = []

        def sorted_pending() -> Batch:
            merged = {name: np.concatenate([b[name] for b in pending])
                      for name in pending[0]}
            order = lexsort_batch(merged, self.keys)
            return slice_batch(merged, order)

        for batch in child.execute(ctx):
            pending.append(batch)
            pending_bytes += batch_bytes(batch)
            if pending_bytes >= ctx.work_mem_bytes:
                runs.append(self._spill(ctx, sorted_pending()))
                pending = []
                pending_bytes = 0
        if not runs:
            if pending:
                yield sorted_pending()
            return
        if pending:
            runs.append(self._spill(ctx, sorted_pending()))
            pending = []
        self.spilled_runs = len(runs)
        try:
            yield from self._merge(ctx, runs)
        finally:
            for run in runs:
                ctx.drop_temp(run)

    def _spill(self, ctx: ExecContext, batch: Batch) -> HeapTable:
        run = ctx.make_temp(self._bare_schema())
        run.load({self._bare(k): batch[k] for k in self._names()})
        return run

    def _names(self) -> list[str]:
        return [c.name for c in self.schema.columns]

    def _bare_schema(self) -> Schema:
        mapping = {c.name: self._bare(c.name) for c in self.schema.columns}
        return self.schema.rename(mapping)

    def _bare(self, name: str) -> str:
        # Positional encoding: spill-table column names must be valid
        # regardless of qualifiers in the logical names.
        return f"c{self._names().index(name)}"

    def _unbare(self, batch: Batch) -> Batch:
        names = {self._bare(c.name): c.name for c in self.schema.columns}
        return {names[k]: v for k, v in batch.items()}

    def _merge(self, ctx: ExecContext, runs: list[HeapTable]
               ) -> Iterator[Batch]:
        cursors = [run.scan(batch_pages=SCAN_BATCH_PAGES) for run in runs]
        buffers: list[Batch | None] = [None] * len(runs)
        exhausted = [False] * len(runs)
        bare_keys = [self._bare(k) for k in self.keys]

        def refill(i: int) -> None:
            if exhausted[i]:
                return
            try:
                nxt = next(cursors[i])
            except StopIteration:
                exhausted[i] = True
                return
            if buffers[i] is None or batch_length(buffers[i]) == 0:
                buffers[i] = nxt
            else:
                buffers[i] = {k: np.concatenate([buffers[i][k], nxt[k]])
                              for k in nxt}

        for i in range(len(runs)):
            refill(i)
        while True:
            open_runs = [i for i in range(len(runs))
                         if buffers[i] is not None
                         and batch_length(buffers[i]) > 0]
            if not open_runs:
                return
            # Watermark: the least last-loaded key among non-exhausted runs.
            watermark = None
            for i in open_runs:
                if exhausted[i]:
                    continue
                buf = buffers[i]
                last = tuple(buf[k][-1] for k in bare_keys)
                if watermark is None or last < watermark:
                    watermark = last
            emit_parts: list[Batch] = []
            for i in open_runs:
                buf = buffers[i]
                if watermark is None:
                    take = np.ones(batch_length(buf), dtype=bool)
                else:
                    take = lex_leq([buf[k] for k in bare_keys], watermark)
                if take.all():
                    emit_parts.append(buf)
                    buffers[i] = None
                elif take.any():
                    emit_parts.append(slice_batch(buf, take))
                    buffers[i] = slice_batch(buf, ~take)
                if buffers[i] is None or batch_length(buffers[i]) == 0:
                    refill(i)
            if emit_parts:
                merged = {k: np.concatenate([p[k] for p in emit_parts])
                          for k in emit_parts[0]}
                order = lexsort_batch(merged, bare_keys)
                yield self._unbare(slice_batch(merged, order))
            elif watermark is None:
                return

    def _describe(self) -> str:
        return f"ExternalSort({', '.join(self.keys)})"


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
_REDUCERS = {
    "SUM": np.add.reduceat,
    "MIN": np.minimum.reduceat,
    "MAX": np.maximum.reduceat,
}

_COMBINE = {
    "SUM": np.add,
    "COUNT": np.add,
    "MIN": np.minimum,
    "MAX": np.maximum,
}


class SortAggOp(PhysOp):
    """Aggregation over input sorted by the group keys (one pass).

    This is the second half of the paper's matrix-multiply-in-SQL plan:
    hash join on ``A.J = B.I`` then *"sorts the result by (A.I, B.J) to
    perform group-by and aggregation."*
    """

    def __init__(self, child: PhysOp, group_keys: list[str],
                 aggs: list[tuple[str, str, Expr]],
                 schema: Schema) -> None:
        self.children = (child,)
        self.group_keys = list(group_keys)
        self.aggs = aggs
        self.schema = schema
        self.sorted_on = tuple(
            c.name for c in schema.columns[:len(group_keys)])

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        child = self.children[0]
        out_key_names = [c.name for c in
                         self.schema.columns[:len(self.group_keys)]]
        carry_key: tuple | None = None
        carry_state: dict[str, float] = {}

        def finish(keys: tuple, state: dict) -> Batch:
            out: Batch = {}
            for name, key_val, col in zip(
                    out_key_names, keys,
                    self.schema.columns[:len(out_key_names)]):
                out[name] = np.asarray([key_val], dtype=col.dtype)
            for name, func, _ in self.aggs:
                col = self.schema.column(name)
                if func == "AVG":
                    val = state[name + "#sum"] / state[name + "#n"]
                else:
                    val = state[name]
                out[name] = np.asarray([val], dtype=col.dtype)
            return out

        for batch in child.execute(ctx):
            n = batch_length(batch)
            if n == 0:
                continue
            key_cols = [np.asarray(batch[k]) for k in self.group_keys]
            # Segment starts: row 0 plus every row whose key differs from
            # the previous row's.
            if n == 1:
                starts = np.asarray([0])
            else:
                change = np.zeros(n - 1, dtype=bool)
                for col in key_cols:
                    change |= col[1:] != col[:-1]
                starts = np.concatenate([[0], np.flatnonzero(change) + 1])
            seg_values: dict[str, np.ndarray] = {}
            for name, func, expr in self.aggs:
                vals = np.asarray(expr.eval(batch), dtype=np.float64)
                if vals.ndim == 0:
                    vals = np.full(n, float(vals))
                if func == "COUNT":
                    seg_values[name] = np.add.reduceat(
                        np.ones(n), starts).astype(np.float64)
                elif func == "AVG":
                    seg_values[name + "#sum"] = np.add.reduceat(vals, starts)
                    seg_values[name + "#n"] = np.add.reduceat(
                        np.ones(n), starts)
                else:
                    seg_values[name] = _REDUCERS[func](vals, starts)
            seg_keys = [tuple(col[s] for col in key_cols) for s in starts]
            n_segs = len(starts)
            emit: list[Batch] = []
            for si in range(n_segs):
                state = {name: seg_values[name][si] for name in seg_values}
                if carry_key is not None and seg_keys[si] == carry_key:
                    for name, func, _ in self.aggs:
                        if func == "AVG":
                            carry_state[name + "#sum"] += state[name + "#sum"]
                            carry_state[name + "#n"] += state[name + "#n"]
                        else:
                            carry_state[name] = _COMBINE[
                                "SUM" if func == "COUNT" else func](
                                carry_state[name], state[name])
                    state = carry_state
                elif carry_key is not None:
                    emit.append(finish(carry_key, carry_state))
                carry_key = seg_keys[si]
                carry_state = dict(state)
                if si < n_segs - 1:
                    emit.append(finish(carry_key, carry_state))
                    carry_key = None
                    carry_state = {}
            if emit:
                yield {name: np.concatenate([b[name] for b in emit])
                       for name in emit[0]}
        if carry_key is not None:
            yield finish(carry_key, carry_state)

    def _describe(self) -> str:
        aggs = ", ".join(f"{f}({e.to_sql()}) AS {n}"
                         for n, f, e in self.aggs)
        return f"SortAgg(keys=[{', '.join(self.group_keys)}], {aggs})"


class ScalarAggOp(PhysOp):
    """Global aggregation without grouping (single output row)."""

    def __init__(self, child: PhysOp, aggs: list[tuple[str, str, Expr]],
                 schema: Schema) -> None:
        self.children = (child,)
        self.aggs = aggs
        self.schema = schema

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        state: dict[str, float | None] = {}
        count = 0
        for batch in self.children[0].execute(ctx):
            n = batch_length(batch)
            count += n
            for name, func, expr in self.aggs:
                vals = np.asarray(expr.eval(batch), dtype=np.float64)
                if vals.ndim == 0:
                    vals = np.full(n, float(vals))
                if func == "COUNT":
                    part = float(n)
                elif func in ("SUM", "AVG"):
                    part = float(vals.sum())
                elif func == "MIN":
                    part = float(vals.min()) if n else None
                else:
                    part = float(vals.max()) if n else None
                key = name + "#p"
                if part is None:
                    continue
                if key not in state:
                    state[key] = part
                elif func == "MIN":
                    state[key] = min(state[key], part)
                elif func == "MAX":
                    state[key] = max(state[key], part)
                else:
                    state[key] = state[key] + part
                if func == "AVG":
                    state[name + "#n"] = state.get(name + "#n", 0.0) + n
        out: Batch = {}
        for name, func, _ in self.aggs:
            col = self.schema.column(name)
            val = state.get(name + "#p", 0.0)
            if func == "AVG":
                denom = state.get(name + "#n", 0.0)
                val = val / denom if denom else float("nan")
            out[name] = np.asarray([val], dtype=col.dtype)
        yield out

    def _describe(self) -> str:
        return "ScalarAgg"


class MaterializeOp(PhysOp):
    """Write the child's output into a heap table, passing batches through."""

    def __init__(self, child: PhysOp, table: HeapTable) -> None:
        self.children = (child,)
        self.table = table
        self.schema = child.schema
        self.sorted_on = child.sorted_on

    def execute(self, ctx: ExecContext) -> Iterator[Batch]:
        mapping = {c.name: t.name for c, t in
                   zip(self.schema.columns, self.table.schema.columns)}
        for batch in self.children[0].execute(ctx):
            self.table.append_batch(
                {mapping[name]: arr for name, arr in batch.items()})
            yield batch
        self.table.finish_append()
        if self.sorted_on:
            self.table.clustered_on = tuple(
                mapping[c] for c in self.sorted_on)

    def _describe(self) -> str:
        return f"Materialize(into {self.table.name})"


def run_to_batch(op: PhysOp, ctx: ExecContext) -> Batch:
    """Execute a physical plan and collect the full result in memory.

    Only for small results and tests — real consumers stream batches.
    """
    parts = list(op.execute(ctx))
    if not parts:
        return {c.name: np.empty(0, dtype=c.dtype)
                for c in op.schema.columns}
    return {name: np.concatenate([p[name] for p in parts])
            for name in parts[0]}
