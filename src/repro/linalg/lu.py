"""Blocked out-of-core LU decomposition with partial pivoting.

§5 of the paper names LU decomposition as a first-class operator of the
RIOT expression algebra ("RIOT's expression algebra includes standard
linear algebra operations, such as matrix multiplication and LU
decomposition"); this module supplies the out-of-core implementation.

Right-looking blocked LU *with partial pivoting* (the LAPACK ``getrf``
schedule, out of core):

1. **Tall-panel factorization.**  The trailing column panel — all rows
   ``k0..n`` of the ``p`` panel columns — is read into memory and
   factored with row interchanges, choosing each pivot as the
   largest-magnitude candidate across the full trailing panel.  The
   panel must be resident because pivot choice is data-dependent; panel
   width comes from :func:`repro.core.costs.lu_panel_width` so one tall
   panel takes at most a third of the memory budget.
2. **Out-of-core row swaps.**  The panel's interchanges are then applied
   to every other column — the already-factored blocks on the left *and*
   the trailing submatrix on the right — one ``p``-wide strip at a time.
   For trailing strips the pass is fused with the triangular solve that
   produces U's row panel (``U[k, j] = inv(L_kk) @ A[k, j]``).
3. **Trailing update.**  ``A[i, j] -= L[i, k] @ U[k, j]`` one block pair
   at a time, announcing each step's footprint via ``pool.prefetch()``
   like every other kernel.

The result is a :class:`PackedLU`: the packed L\\U factor (unit-diagonal
L strictly below, U on and above the diagonal) plus the row permutation
stored alongside it in the tile store, satisfying ``P A = L U`` with
``(P A)[i] = A[perm[i]]``.  An exactly singular input (a pivot column
with no nonzero candidate) raises :class:`SingularMatrixError` instead
of the silent garbage or ``ZeroDivisionError`` of unpivoted Doolittle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import lu_panel_width
from repro.storage import (ArrayStore, TiledMatrix, TiledVector,
                           tile_shape_for_layout)


class SingularMatrixError(ArithmeticError):
    """The matrix is exactly singular: no nonzero pivot candidate."""


@dataclass
class PackedLU:
    """A pivoted factorization living in the tile store.

    ``packed`` holds L (unit diagonal, strictly below) and U (on and
    above the diagonal) in place; ``perm`` is the row permutation as a
    stored vector, so the factorization is self-contained on disk:
    ``packed.to_numpy()[i] == (L @ U)[i]`` reconstructs row ``perm[i]``
    of the input.
    """

    packed: TiledMatrix
    perm: TiledVector

    @property
    def shape(self) -> tuple[int, int]:
        return self.packed.shape

    def perm_array(self) -> np.ndarray:
        """The permutation as 0-based integer row indices."""
        return self.perm.to_numpy().astype(np.int64)

    def drop(self) -> None:
        self.packed.drop()
        self.perm.drop()


def _panel_lu(panel: np.ndarray, global_row0: int) -> np.ndarray:
    """In-memory partial-pivot LU of a tall panel, packed in place.

    Returns the pivot rows chosen per column, as *local* row offsets
    into the panel (LAPACK ``ipiv`` convention: column ``k`` swapped
    rows ``k`` and ``piv[k]``).  ``global_row0`` only labels the error.
    """
    rows, cols = panel.shape
    piv = np.empty(cols, dtype=np.int64)
    for k in range(cols):
        r = k + int(np.argmax(np.abs(panel[k:, k])))
        if panel[r, k] == 0.0:
            raise SingularMatrixError(
                f"matrix is exactly singular: column {global_row0 + k} "
                f"has no nonzero pivot candidate")
        piv[k] = r
        if r != k:
            panel[[k, r]] = panel[[r, k]]
        panel[k + 1:, k] /= panel[k, k]
        if k + 1 < cols:
            panel[k + 1:, k + 1:] -= np.outer(panel[k + 1:, k],
                                              panel[k, k + 1:])
    return piv


def _apply_swaps(strip: np.ndarray, piv: np.ndarray) -> None:
    """Apply a panel's interchanges (in order) to a row-aligned strip."""
    for k, r in enumerate(piv):
        if r != k:
            strip[[k, r]] = strip[[r, k]]


def lu_decompose(store: ArrayStore, a: TiledMatrix,
                 memory_scalars: int | None = None,
                 name: str | None = None) -> PackedLU:
    """Factor a square matrix into packed L\\U with partial pivoting.

    The input is copied (RIOT's pure-operator discipline: the old state
    of the array remains valid); the permutation is stored alongside the
    factor.  Raises :class:`ValueError` when the memory budget cannot
    hold even the minimum tall panel (one tile column of full height,
    ``3 * n * tile_side`` scalars) — the budget is honored, never
    silently exceeded — and :class:`SingularMatrixError` on an exactly
    singular input.
    """
    n1, n2 = a.shape
    if n1 != n2:
        raise ValueError(f"LU requires a square matrix, got {a.shape}")
    n = n1
    memory = memory_scalars or (store.pool.capacity
                                * store.scalars_per_block)
    tile_w = tile_shape_for_layout("square", (n, n),
                                   store.scalars_per_block)[1]
    if memory < 3 * n * tile_w:
        raise ValueError(
            f"memory budget of {memory} scalars cannot hold a tall "
            f"pivot panel for n={n}: partial pivoting needs at least "
            f"3 * n * tile_side = {3 * n * tile_w} scalars "
            f"(panel + strip + working frames)")
    out = store.create_matrix((n, n), layout="square", name=name,
                              dtype=a.dtype)
    p = lu_panel_width(n, memory, tile_w)
    for ti, tj in a.tiles():
        r0, r1, c0, c1 = a.tile_bounds(ti, tj)
        out.write_submatrix(r0, c0, a.read_submatrix(r0, r1, c0, c1))
    perm = np.arange(n, dtype=np.int64)
    try:
        for k0 in range(0, n, p):
            k1 = min(k0 + p, n)
            with store.tracer.span("lu:panel", cat="kernel", k0=k0, p=p):
                # 1. Tall-panel factorization with row interchanges.
                store.pool.prefetch(out.submatrix_blocks(k0, n, k0, k1))
                panel = out.read_submatrix(k0, n, k0, k1)
                piv = _panel_lu(panel, k0)
                out.write_submatrix(k0, k0, panel)
                _apply_swaps(perm[k0:n], piv)
                l_kk = np.tril(panel[: k1 - k0], -1) + np.eye(k1 - k0)
                # 2. Apply the interchanges out-of-core: the already-
                # factored left blocks get the swaps alone, trailing
                # strips fuse the swaps with the triangular solve for
                # U's row panel.
                strips = [(j0, min(j0 + p, k0), False)
                          for j0 in range(0, k0, p)]
                strips += [(j0, min(j0 + p, n), True)
                           for j0 in range(k1, n, p)]
                for j0, j1, trailing in strips:
                    store.pool.prefetch(
                        out.submatrix_blocks(k0, n, j0, j1))
                    strip = out.read_submatrix(k0, n, j0, j1)
                    _apply_swaps(strip, piv)
                    if trailing:
                        strip[: k1 - k0] = np.linalg.solve(
                            l_kk, strip[: k1 - k0])
                    out.write_submatrix(k0, j0, strip)
                # 3. Trailing update: A[i, j] -= L[i, k] @ U[k, j].
                for i0 in range(k1, n, p):
                    i1 = min(i0 + p, n)
                    l_ik = out.read_submatrix(i0, i1, k0, k1)
                    for j0 in range(k1, n, p):
                        j1 = min(j0 + p, n)
                        store.pool.prefetch(
                            out.submatrix_blocks(k0, k1, j0, j1)
                            + out.submatrix_blocks(i0, i1, j0, j1))
                        u_kj = out.read_submatrix(k0, k1, j0, j1)
                        block = out.read_submatrix(i0, i1, j0, j1)
                        out.write_submatrix(i0, j0, block - l_ik @ u_kj)
    except SingularMatrixError:
        # A singular input is a catchable, retryable condition: free
        # the half-built working factor instead of leaking its pages.
        out.drop()
        raise
    perm_vec = store.vector_from_numpy(perm.astype(np.float64),
                                       name=f"{out.name}_perm")
    return PackedLU(packed=out, perm=perm_vec)


def split_lu(store: ArrayStore, packed: PackedLU | TiledMatrix
             ) -> tuple[TiledMatrix, TiledMatrix]:
    """Unpack L (unit diagonal) and U from a packed factorization."""
    mat = packed.packed if isinstance(packed, PackedLU) else packed
    n = mat.shape[0]
    l_mat = store.create_matrix((n, n), layout="square",
                                dtype=mat.dtype)
    u_mat = store.create_matrix((n, n), layout="square",
                                dtype=mat.dtype)
    for ti, tj in mat.tiles():
        r0, r1, c0, c1 = mat.tile_bounds(ti, tj)
        block = mat.read_submatrix(r0, r1, c0, c1)
        l_block = np.zeros_like(block)
        u_block = np.zeros_like(block)
        if ti > tj:
            l_block = block
        elif ti < tj:
            u_block = block
        else:
            l_block = np.tril(block, -1) + np.eye(block.shape[0])
            u_block = np.triu(block)
        l_mat.write_submatrix(r0, c0, l_block)
        u_mat.write_submatrix(r0, c0, u_block)
    return l_mat, u_mat
