"""Blocked out-of-core LU decomposition over the tile store.

§5 of the paper names LU decomposition as a first-class operator of the
RIOT expression algebra ("RIOT's expression algebra includes standard
linear algebra operations, such as matrix multiplication and LU
decomposition"); this module supplies the out-of-core implementation.

Right-looking blocked LU without pivoting: panels of ``p`` columns are
factored in memory, then the trailing submatrix is updated one p x p block
at a time.  Without pivoting the factorization requires a matrix whose
leading principal minors are nonsingular (diagonally dominant matrices in
the tests); :func:`lu_decompose` stores L and U packed in place
(unit-diagonal L below, U on and above the diagonal).
"""

from __future__ import annotations

import math

import numpy as np

from repro.storage import ArrayStore, TiledMatrix


def _unblocked_lu(a: np.ndarray) -> np.ndarray:
    """In-memory LU without pivoting, packed L\\U, Doolittle style."""
    a = a.copy()
    n = a.shape[0]
    for k in range(n):
        pivot = a[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError(
                "zero pivot; matrix needs pivoting (not supported)")
        a[k + 1:, k] /= pivot
        if k + 1 < n:
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def lu_decompose(store: ArrayStore, a: TiledMatrix,
                 memory_scalars: int | None = None,
                 name: str | None = None) -> TiledMatrix:
    """Factor a square matrix into packed L\\U, out of core.

    The input is copied (RIOT's pure-operator discipline: the old state of
    the array remains valid); panel size is chosen so three p x p blocks fit
    in the memory budget, mirroring the matmul schedule.
    """
    n1, n2 = a.shape
    if n1 != n2:
        raise ValueError(f"LU requires a square matrix, got {a.shape}")
    n = n1
    memory = memory_scalars or (store.pool.capacity
                                * store.scalars_per_block)
    tile_side = max(a.tile_shape)
    p = int(math.sqrt(memory / 3.0))
    p = max(tile_side, (p // tile_side) * tile_side)
    out = store.create_matrix((n, n), layout="square", name=name)
    for ti, tj in a.tiles():
        r0, r1, c0, c1 = a.tile_bounds(ti, tj)
        out.write_submatrix(r0, c0, a.read_submatrix(r0, r1, c0, c1))
    for k0 in range(0, n, p):
        k1 = min(k0 + p, n)
        diag = _unblocked_lu(out.read_submatrix(k0, k1, k0, k1))
        out.write_submatrix(k0, k0, diag)
        l_kk = np.tril(diag, -1) + np.eye(k1 - k0)
        u_kk = np.triu(diag)
        # Row panel: U[k, j] = inv(L_kk) @ A[k, j]
        for j0 in range(k1, n, p):
            j1 = min(j0 + p, n)
            block = out.read_submatrix(k0, k1, j0, j1)
            out.write_submatrix(
                k0, j0, np.linalg.solve(l_kk, block))
        # Column panel: L[i, k] = A[i, k] @ inv(U_kk)
        for i0 in range(k1, n, p):
            i1 = min(i0 + p, n)
            block = out.read_submatrix(i0, i1, k0, k1)
            out.write_submatrix(
                i0, k0, np.linalg.solve(u_kk.T, block.T).T)
        # Trailing update: A[i, j] -= L[i, k] @ U[k, j]
        for i0 in range(k1, n, p):
            i1 = min(i0 + p, n)
            l_ik = out.read_submatrix(i0, i1, k0, k1)
            for j0 in range(k1, n, p):
                j1 = min(j0 + p, n)
                u_kj = out.read_submatrix(k0, k1, j0, j1)
                block = out.read_submatrix(i0, i1, j0, j1)
                out.write_submatrix(i0, j0, block - l_ik @ u_kj)
    return out


def split_lu(store: ArrayStore, packed: TiledMatrix
             ) -> tuple[TiledMatrix, TiledMatrix]:
    """Unpack L (unit diagonal) and U from a packed factorization."""
    n = packed.shape[0]
    l_mat = store.create_matrix((n, n), layout="square")
    u_mat = store.create_matrix((n, n), layout="square")
    for ti, tj in packed.tiles():
        r0, r1, c0, c1 = packed.tile_bounds(ti, tj)
        block = packed.read_submatrix(r0, r1, c0, c1)
        l_block = np.zeros_like(block)
        u_block = np.zeros_like(block)
        if ti > tj:
            l_block = block
        elif ti < tj:
            u_block = block
        else:
            l_block = np.tril(block, -1) + np.eye(block.shape[0])
            u_block = np.triu(block)
        l_mat.write_submatrix(r0, c0, l_block)
        u_mat.write_submatrix(r0, c0, u_block)
    return l_mat, u_mat
