"""Blocked triangular solves and a full pivoted linear solver.

Completes the LU story of §5: with :func:`repro.linalg.lu.lu_decompose`
producing a pivoted packed factor out of core, :func:`lu_solve` answers
``A x = b`` by permuting the right-hand side (``P b``) and running two
blocked substitution sweeps that stream one block row of the factor at
a time.  The right-hand side may be a vector or a (narrow) matrix of
columns; it rides along in memory while the factor streams from disk.

Block-row size is derived from the store's pool budget through the same
:func:`repro.core.costs.lu_panel_width` formula the factorization uses
(clamped to the tile side instead of raising — a substitution step only
ever holds one factor block plus the RHS), and every block row's tile
footprint is announced through ``pool.prefetch()`` before it is read,
per the storage stack's accounting contract: hints change the number
and size of device calls, never the block totals.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import lu_panel_width
from repro.storage import ArrayStore, TiledMatrix

from .lu import PackedLU


def _block_rows(packed: TiledMatrix, memory_scalars: int | None) -> int:
    """Block-row size for a substitution sweep, from the pool budget."""
    n = packed.shape[0]
    memory = memory_scalars or (packed.store.pool.capacity
                                * packed.store.scalars_per_block)
    return lu_panel_width(n, memory, packed.tile_shape[0])


def forward_substitute(packed: TiledMatrix, b: np.ndarray,
                       block: int | None = None,
                       unit_diagonal: bool = True,
                       memory_scalars: int | None = None) -> np.ndarray:
    """Solve L y = b with L the (unit-)lower triangle of ``packed``.

    ``block`` defaults to the pool-budget-derived block-row size; pass
    an explicit value only to pin the schedule (tests, ablations).
    """
    n = packed.shape[0]
    block = block or _block_rows(packed, memory_scalars)
    y = np.array(b, dtype=np.float64, copy=True)
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        # This block row touches the factor's columns [0, i1): announce
        # the exact tile footprint so the misses coalesce.
        packed.store.pool.prefetch(
            packed.submatrix_blocks(i0, i1, 0, i1))
        for j0 in range(0, i0, block):
            j1 = min(j0 + block, i0)
            l_ij = packed.read_submatrix(i0, i1, j0, j1)
            y[i0:i1] -= l_ij @ y[j0:j1]
        diag = packed.read_submatrix(i0, i1, i0, i1)
        l_ii = np.tril(diag, -1) + (np.eye(i1 - i0) if unit_diagonal
                                    else np.diag(np.diag(diag)))
        y[i0:i1] = np.linalg.solve(l_ii, y[i0:i1])
    return y


def backward_substitute(packed: TiledMatrix, y: np.ndarray,
                        block: int | None = None,
                        memory_scalars: int | None = None) -> np.ndarray:
    """Solve U x = y with U the upper triangle of ``packed``."""
    n = packed.shape[0]
    block = block or _block_rows(packed, memory_scalars)
    x = np.array(y, dtype=np.float64, copy=True)
    starts = list(range(0, n, block))
    for i0 in reversed(starts):
        i1 = min(i0 + block, n)
        packed.store.pool.prefetch(
            packed.submatrix_blocks(i0, i1, i0, n))
        for j0 in starts:
            if j0 <= i0:
                continue
            j1 = min(j0 + block, n)
            u_ij = packed.read_submatrix(i0, i1, j0, j1)
            x[i0:i1] -= u_ij @ x[j0:j1]
        u_ii = np.triu(packed.read_submatrix(i0, i1, i0, i1))
        x[i0:i1] = np.linalg.solve(u_ii, x[i0:i1])
    return x


def lu_solve_factored(factors: PackedLU, b: np.ndarray,
                      memory_scalars: int | None = None) -> np.ndarray:
    """Solve ``A x = b`` from an existing pivoted factorization.

    Applies the stored row permutation (``L U x = P b``), then the two
    substitution sweeps.  ``b`` may be ``(n,)`` or ``(n, k)``.
    """
    perm = factors.perm_array()
    pb = np.asarray(b, dtype=np.float64)[perm]
    y = forward_substitute(factors.packed, pb,
                           memory_scalars=memory_scalars)
    return backward_substitute(factors.packed, y,
                               memory_scalars=memory_scalars)


def lu_solve(store: ArrayStore, a: TiledMatrix, b: np.ndarray,
             memory_scalars: int | None = None) -> np.ndarray:
    """Solve ``A x = b`` by pivoted out-of-core LU + blocked substitution.

    Partial pivoting makes this correct for every nonsingular system —
    no diagonal-dominance assumption; an exactly singular ``a`` raises
    :class:`repro.linalg.lu.SingularMatrixError`.
    """
    from .lu import lu_decompose

    factors = lu_decompose(store, a, memory_scalars)
    try:
        return lu_solve_factored(factors, b, memory_scalars)
    finally:
        factors.drop()
