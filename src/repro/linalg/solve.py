"""Blocked triangular solves and a full linear solver over tiles.

Completes the LU story of §5: with :func:`repro.linalg.lu.lu_decompose`
producing packed factors out of core, ``lu_solve`` answers ``A x = b``
with two blocked substitution sweeps, streaming one block row of the
factor at a time.
"""

from __future__ import annotations

import numpy as np

from repro.storage import ArrayStore, TiledMatrix


def forward_substitute(packed: TiledMatrix, b: np.ndarray,
                       block: int = 1024, unit_diagonal: bool = True
                       ) -> np.ndarray:
    """Solve L y = b with L the (unit-)lower triangle of ``packed``."""
    n = packed.shape[0]
    y = np.asarray(b, dtype=np.float64).copy()
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        for j0 in range(0, i0, block):
            j1 = min(j0 + block, i0)
            l_ij = packed.read_submatrix(i0, i1, j0, j1)
            y[i0:i1] -= l_ij @ y[j0:j1]
        diag = packed.read_submatrix(i0, i1, i0, i1)
        l_ii = np.tril(diag, -1) + (np.eye(i1 - i0) if unit_diagonal
                                    else np.diag(np.diag(diag)))
        y[i0:i1] = np.linalg.solve(l_ii, y[i0:i1])
    return y


def backward_substitute(packed: TiledMatrix, y: np.ndarray,
                        block: int = 1024) -> np.ndarray:
    """Solve U x = y with U the upper triangle of ``packed``."""
    n = packed.shape[0]
    x = np.asarray(y, dtype=np.float64).copy()
    starts = list(range(0, n, block))
    for i0 in reversed(starts):
        i1 = min(i0 + block, n)
        for j0 in starts:
            if j0 <= i0:
                continue
            j1 = min(j0 + block, n)
            u_ij = packed.read_submatrix(i0, i1, j0, j1)
            x[i0:i1] -= u_ij @ x[j0:j1]
        u_ii = np.triu(packed.read_submatrix(i0, i1, i0, i1))
        x[i0:i1] = np.linalg.solve(u_ii, x[i0:i1])
    return x


def lu_solve(store: ArrayStore, a: TiledMatrix, b: np.ndarray,
             memory_scalars: int | None = None) -> np.ndarray:
    """Solve ``A x = b`` by out-of-core LU + blocked substitution."""
    from .lu import lu_decompose

    packed = lu_decompose(store, a, memory_scalars)
    try:
        y = forward_substitute(packed, b)
        return backward_substitute(packed, y)
    finally:
        packed.drop()
