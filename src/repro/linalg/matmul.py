"""Measured out-of-core matrix multiplication over the tile store.

Two real algorithms from the paper, both running against
:class:`~repro.storage.TiledMatrix` with every block counted:

- :func:`bnlj_matmul` — the §3/§4 algorithm "borrowing the idea from block
  nested-loop join": as many rows of A (and the matching rows of the result)
  as fit in memory, scanning B once per chunk.  Cost
  ``Theta(n1*n2*n3*(n2+n3)/(B*M))``.
- :func:`square_tile_matmul` — the Appendix-A optimal schedule: p x p
  submatrices with ``p = sqrt(M/3)``, cost ``Theta(lmn/(B*sqrt(M)))``.

``tests/linalg`` checks both for numerical equality with numpy and for
I/O agreement with the analytic models of :mod:`repro.core.costs`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.storage import ArrayStore, TiledMatrix


def _check_conformable(a: TiledMatrix, b: TiledMatrix) -> None:
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"non-conformable matrices: {a.shape} x {b.shape}")


def square_tile_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                       memory_scalars: int,
                       name: str | None = None) -> TiledMatrix:
    """Appendix-A schedule: three p x p submatrices resident at a time.

    ``p`` is sized so one submatrix of A, one of B and one of the result
    fill the memory budget, then rounded down to a whole number of storage
    tiles so submatrix reads map to whole-tile I/O.
    """
    _check_conformable(a, b)
    m, l = a.shape
    n = b.shape[1]
    tile_side = max(a.tile_shape[0], a.tile_shape[1])
    p = int(math.sqrt(memory_scalars / 3.0))
    p = max(tile_side, (p // tile_side) * tile_side)
    out = store.create_matrix((m, n), layout="square", name=name)
    hinting = a.store is store and b.store is store
    for i0 in range(0, m, p):
        i1 = min(i0 + p, m)
        for j0 in range(0, n, p):
            j1 = min(j0 + p, n)
            acc = np.zeros((i1 - i0, j1 - j0))
            for k0 in range(0, l, p):
                k1 = min(k0 + p, l)
                if hinting:
                    # Announce the step's full footprint — both operand
                    # submatrices at once — so the scheduler turns the
                    # tile misses into a handful of coalesced reads.
                    store.pool.prefetch(
                        a.submatrix_blocks(i0, i1, k0, k1)
                        + b.submatrix_blocks(k0, k1, j0, j1))
                a_sub = a.read_submatrix(i0, i1, k0, k1)
                b_sub = b.read_submatrix(k0, k1, j0, j1)
                acc += a_sub @ b_sub
            out.write_submatrix(i0, j0, acc)
    return out


def bnlj_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                memory_scalars: int,
                name: str | None = None) -> TiledMatrix:
    """§3's block-nested-loop-join-inspired algorithm.

    Memory is split between ``q`` rows of A and the matching ``q`` rows of
    the result (q = M/(n2+n3)); each chunk of A rows scans B in full.  Works
    best when A is stored with row tiles and B with column tiles, exactly
    as the paper's BNLJ-Inspired strategy assumes.
    """
    _check_conformable(a, b)
    n1, n2 = a.shape
    n3 = b.shape[1]
    q = max(1, int(memory_scalars / (n2 + n3)))
    out = store.create_matrix((n1, n3), layout="row", name=name)
    for r0 in range(0, n1, q):
        r1 = min(r0 + q, n1)
        a_rows = a.read_submatrix(r0, r1, 0, n2)
        t_rows = np.zeros((r1 - r0, n3))
        # Scan B one column-block at a time (a block of columns costs the
        # same I/O as one column when B uses column tiles).
        col_step = max(1, b.tile_shape[1])
        for c0 in range(0, n3, col_step):
            c1 = min(c0 + col_step, n3)
            b_cols = b.read_submatrix(0, n2, c0, c1)
            t_rows[:, c0:c1] = a_rows @ b_cols
        out.write_submatrix(r0, 0, t_rows)
    return out


def naive_tile_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                      name: str | None = None) -> TiledMatrix:
    """The unblocked triple loop at tile granularity (baseline).

    Iterates output tiles in row-major order and re-reads the A tile row
    and B tile column for every output tile with no submatrix blocking —
    the access pattern of Example 2's straightforward algorithm, at tile
    rather than element granularity.  I/O grows as
    ``Theta(n1*n2*n3 / (B * t))`` for tile side t, which a small buffer
    pool cannot hide.
    """
    _check_conformable(a, b)
    m, l = a.shape
    n = b.shape[1]
    out = store.create_matrix((m, n), layout="square", name=name)
    th_a, tw_a = a.tile_shape
    th_b, tw_b = b.tile_shape
    th_o, tw_o = out.tile_shape
    for ti in range(out.grid[0]):
        for tj in range(out.grid[1]):
            r0, r1, c0, c1 = out.tile_bounds(ti, tj)
            acc = np.zeros((r1 - r0, c1 - c0))
            for k0 in range(0, l, tw_a):
                k1 = min(k0 + tw_a, l)
                a_sub = a.read_submatrix(r0, r1, k0, k1)
                b_sub = b.read_submatrix(k0, k1, c0, c1)
                acc += a_sub @ b_sub
            out.write_tile(ti, tj, acc)
    return out


ALGORITHMS = {
    "square": square_tile_matmul,
    "bnlj": bnlj_matmul,
}


def multiply_chain(store: ArrayStore, mats: list[TiledMatrix],
                   memory_scalars: int, order=None,
                   algorithm: str = "square") -> TiledMatrix:
    """Appendix-B schedule: one multiplication at a time, optimal order.

    ``order`` defaults to the DP-optimal parenthesization; pass
    ``repro.core.chain.in_order(len(mats))`` to reproduce R's left-deep
    evaluation for comparison.
    """
    from repro.core.chain import optimal_order

    if len(mats) == 1:
        return mats[0]
    dims = [mats[0].shape[0]] + [m.shape[1] for m in mats]
    if order is None:
        order = optimal_order(dims)
    if algorithm == "square":
        multiply = lambda x, y: square_tile_matmul(  # noqa: E731
            store, x, y, memory_scalars)
    elif algorithm == "bnlj":
        multiply = lambda x, y: bnlj_matmul(  # noqa: E731
            store, x, y, memory_scalars)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    temps: list[TiledMatrix] = []

    def build(o) -> TiledMatrix:
        if isinstance(o, int):
            return mats[o]
        left = build(o[0])
        right = build(o[1])
        result = multiply(left, right)
        for t in (left, right):
            if t in temps:
                temps.remove(t)
                t.drop()
        temps.append(result)
        return result

    return build(order)
