"""Measured out-of-core matrix multiplication over the tile store.

Real algorithms from the paper, all running against
:class:`~repro.storage.TiledMatrix` with every block counted:

- :func:`bnlj_matmul` — the §3/§4 algorithm "borrowing the idea from block
  nested-loop join": as many rows of A (and the matching rows of the result)
  as fit in memory, scanning B once per chunk.  Cost
  ``Theta(n1*n2*n3*(n2+n3)/(B*M))``.
- :func:`square_tile_matmul` — the Appendix-A optimal schedule: p x p
  submatrices with ``p = sqrt(M/3)``, cost ``Theta(lmn/(B*sqrt(M)))``.
- :func:`crossprod_matmul` — the symmetric ``t(A) %*% A`` schedule: only
  upper-triangular output blocks are computed (mirrored on write), so it
  moves about half the operand blocks of the general algorithm.

The dense kernels take ``trans_a``/``trans_b`` *operand flags*: a flagged
operand is multiplied as its transpose but **read in its stored layout**,
each submatrix transposed in memory as it streams through — the transposed
copy never exists on disk.  They also accept an ``epilogue`` callback
(``epilogue(r0, c0, block) -> block``) applied to every output submatrix
while it is still memory-resident, which is how the evaluator fuses
elementwise consumers (``alpha * (A %*% B) + C``) into the multiply
without materializing the raw product.

``tests/linalg`` checks all of them for numerical equality with numpy and
for I/O agreement with the analytic models of :mod:`repro.core.costs`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.storage import ArrayStore, TiledMatrix


def _effective_shape(m: TiledMatrix, trans: bool) -> tuple[int, int]:
    return m.shape[::-1] if trans else m.shape


def _check_conformable(a: TiledMatrix, b: TiledMatrix,
                       trans_a: bool = False,
                       trans_b: bool = False) -> None:
    sa = _effective_shape(a, trans_a)
    sb = _effective_shape(b, trans_b)
    if sa[1] != sb[0]:
        raise ValueError(
            f"non-conformable matrices: {sa} x {sb}")


def _square_panel(memory_scalars: int, tile_side: int, what: str,
                  panels: int = 3) -> int:
    """The Appendix-A submatrix side p = sqrt(M/panels), tile-aligned.

    ``panels`` is the number of p x p submatrices resident at once —
    3 for the plain schedule (A, B and C blocks), plus one more per
    fused-epilogue matrix input, which reads its own p x p submatrix
    while the accumulator is still live.  When the budget cannot hold
    ``panels`` whole storage tiles, the panel goes *ragged*: p drops
    below the tile side (submatrix reads then cross tile boundaries,
    costing extra partial-tile I/O but never overrunning the budget).
    Raises :class:`ValueError` only when even 1 x 1 panels do not fit.
    """
    if memory_scalars < panels:
        raise ValueError(
            f"memory budget of {memory_scalars} scalars cannot hold "
            f"{panels} 1 x 1 submatrices for {what}: the square-tile "
            f"schedule needs at least {panels} scalars")
    p = int(math.sqrt(memory_scalars / float(panels)))
    if p < tile_side:
        # Ragged fallback: the budget is smaller than the minimum
        # tile-aligned working set, so honor it with an unaligned
        # panel instead of refusing the multiply outright.
        return max(1, p)
    return max(tile_side, (p // tile_side) * tile_side)


def _read_operand(m: TiledMatrix, r0: int, r1: int, c0: int, c1: int,
                  trans: bool) -> np.ndarray:
    """Rectangle (r0:r1, c0:c1) of the *effective* operand.

    A flagged operand reads the mirrored rectangle of the stored matrix
    and transposes it in memory — stored tiles are never re-laid out.
    Dense kernels never mutate operand rectangles, so this goes through
    ``read_submatrix_view`` when the matrix offers it: on a raw-codec
    mmap store with ``zero_copy=1`` a tile-aligned rectangle comes back
    as a read-only view over the page mapping instead of a copy.
    """
    reader = getattr(m, "read_submatrix_view", m.read_submatrix)
    if trans:
        return reader(c0, c1, r0, r1).T
    return reader(r0, r1, c0, c1)


def _operand_blocks(m: TiledMatrix, r0: int, r1: int, c0: int, c1: int,
                    trans: bool) -> list[int]:
    """Device blocks backing the effective rectangle (prefetch hints)."""
    if trans:
        return m.submatrix_blocks(c0, c1, r0, r1)
    return m.submatrix_blocks(r0, r1, c0, c1)


def _accumulate(parallel, acc, thunks):
    """``for fn in thunks: acc += fn()``, offloaded when possible.

    ``parallel`` is duck-typed (anything with ``.accumulate(acc,
    thunks)`` — in practice :class:`repro.core.parallel.TileParallelism`)
    so this module keeps its storage-only import surface.  The thunk
    stream is consumed lazily either way: the prefetch hints and block
    reads embedded in producing each thunk run on the calling thread in
    exact serial order, which is what keeps simulated block counts
    identical at every worker count.
    """
    if parallel is None:
        for fn in thunks:
            acc += fn()
        return acc
    return parallel.accumulate(acc, thunks)


def square_tile_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                       memory_scalars: int,
                       name: str | None = None,
                       trans_a: bool = False,
                       trans_b: bool = False,
                       epilogue=None,
                       epilogue_inputs: int = 0,
                       parallel=None,
                       out_tile_shape: tuple[int, int] | None = None
                       ) -> TiledMatrix:
    """Appendix-A schedule: three p x p submatrices resident at a time.

    ``p`` is sized so one submatrix of A, one of B and one of the result
    fill the memory budget, then rounded down to a whole number of storage
    tiles so submatrix reads map to whole-tile I/O.  Flagged operands are
    read in stored layout and transposed per submatrix in memory;
    ``epilogue`` (if given) maps each finished output submatrix before
    its single write, and ``epilogue_inputs`` declares how many extra
    p x p operand submatrices the callback will read so the panel
    shrinks to keep the whole working set inside the budget.

    ``parallel`` (a ``TileParallelism``-like accumulator) offloads the
    per-step GEMMs to worker threads while this thread keeps issuing
    prefetch hints and block reads in serial order; results are folded
    in increasing-``k`` order, so output bits and block counts match
    the serial kernel exactly.

    ``out_tile_shape`` overrides the result's tile layout (e.g. to give
    chain intermediates larger tiles so the storage codec sees frames
    worth compressing); ``None`` keeps the store's default square
    layout.
    """
    _check_conformable(a, b, trans_a, trans_b)
    m, l = _effective_shape(a, trans_a)
    n = _effective_shape(b, trans_b)[1]
    out_dtype = np.result_type(a.dtype, b.dtype)
    tile_side = max(a.tile_shape[0], a.tile_shape[1])
    panels = 3 + (epilogue_inputs if epilogue is not None else 0)
    p = _square_panel(memory_scalars, tile_side, "square_tile_matmul",
                      panels)
    out = store.create_matrix((m, n), layout="square", name=name,
                              dtype=out_dtype,
                              tile_shape=out_tile_shape)
    hinting = a.store is store and b.store is store
    for i0 in range(0, m, p):
        i1 = min(i0 + p, m)
        for j0 in range(0, n, p):
            j1 = min(j0 + p, n)
            with store.tracer.span("matmul:panel", cat="kernel",
                                   i0=i0, j0=j0, p=p):

                def steps(i0=i0, i1=i1, j0=j0, j1=j1):
                    for k0 in range(0, l, p):
                        k1 = min(k0 + p, l)
                        if hinting:
                            # Announce the step's full footprint — both
                            # operand submatrices at once — so the
                            # scheduler turns the tile misses into a
                            # handful of coalesced reads.
                            store.pool.prefetch(
                                _operand_blocks(a, i0, i1, k0, k1,
                                                trans_a)
                                + _operand_blocks(b, k0, k1, j0, j1,
                                                  trans_b))
                        a_sub = _read_operand(a, i0, i1, k0, k1,
                                              trans_a)
                        b_sub = _read_operand(b, k0, k1, j0, j1,
                                              trans_b)
                        yield lambda a_s=a_sub, b_s=b_sub: a_s @ b_s

                acc = _accumulate(parallel,
                                  np.zeros((i1 - i0, j1 - j0),
                                           dtype=out_dtype),
                                  steps())
                if epilogue is not None:
                    acc = epilogue(i0, j0, acc)
                out.write_submatrix(i0, j0, acc)
    return out


def crossprod_matmul(store: ArrayStore, a: TiledMatrix,
                     memory_scalars: int,
                     name: str | None = None,
                     t_first: bool = True,
                     epilogue=None,
                     epilogue_inputs: int = 0,
                     parallel=None) -> TiledMatrix:
    """Symmetric product ``t(A) %*% A`` (or ``A %*% t(A)``) in one pass.

    Exploits symmetry two ways the general schedule cannot: only the
    upper-triangular p x p output blocks are computed (off-diagonal
    blocks are mirrored to their transposed position on write), and the
    diagonal blocks read their single operand panel once instead of
    twice.  Roughly half the operand reads and half the multiply FLOPs
    of running ``square_tile_matmul`` with a transposed flag — and the
    transpose itself never exists on disk either way.

    ``epilogue`` is applied independently to each output block *and* to
    its mirror (with the mirrored block coordinates), so fused
    elementwise consumers need not be symmetric; ``epilogue_inputs``
    shrinks the panel like in :func:`square_tile_matmul`, and
    ``parallel`` offloads the per-step GEMMs exactly as there (reads
    stay serial on this thread; in-order fold keeps results bitwise).
    """
    inner, k = a.shape if t_first else a.shape[::-1]
    tile_side = max(a.tile_shape[0], a.tile_shape[1])
    panels = 3 + (epilogue_inputs if epilogue is not None else 0)
    p = _square_panel(memory_scalars, tile_side, "crossprod_matmul",
                      panels)
    out = store.create_matrix((k, k), layout="square", name=name,
                              dtype=a.dtype)
    hinting = a.store is store
    for i0 in range(0, k, p):
        i1 = min(i0 + p, k)
        for j0 in range(i0, k, p):
            j1 = min(j0 + p, k)
            with store.tracer.span("crossprod:panel", cat="kernel",
                                   i0=i0, j0=j0, p=p):

                def steps(i0=i0, i1=i1, j0=j0, j1=j1):
                    for r0 in range(0, inner, p):
                        r1 = min(r0 + p, inner)
                        if hinting:
                            blocks = _operand_blocks(a, r0, r1, i0, i1,
                                                     not t_first)
                            if j0 != i0:
                                blocks = blocks + _operand_blocks(
                                    a, r0, r1, j0, j1, not t_first)
                            store.pool.prefetch(blocks)
                        left = _read_operand(a, r0, r1, i0, i1,
                                             not t_first)
                        right = (left if j0 == i0 else
                                 _read_operand(a, r0, r1, j0, j1,
                                               not t_first))
                        yield lambda l_=left, r_=right: l_.T @ r_

                acc = _accumulate(parallel,
                                  np.zeros((i1 - i0, j1 - j0),
                                           dtype=a.dtype),
                                  steps())
                block = acc if epilogue is None else epilogue(i0, j0, acc)
                out.write_submatrix(i0, j0, block)
                if j0 != i0:
                    mirror = (acc.T if epilogue is None
                              else epilogue(j0, i0, acc.T))
                    out.write_submatrix(j0, i0, mirror)
    return out


def bnlj_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                memory_scalars: int,
                name: str | None = None,
                trans_a: bool = False,
                trans_b: bool = False) -> TiledMatrix:
    """§3's block-nested-loop-join-inspired algorithm.

    Memory is split between ``q`` rows of A and the matching ``q`` rows of
    the result (q = M/(n2+n3)); each chunk of A rows scans B in full.  Works
    best when A is stored with row tiles and B with column tiles, exactly
    as the paper's BNLJ-Inspired strategy assumes.  Each A-row chunk and
    each B column-block announces its footprint to the buffer pool before
    reading it, so cold tile misses coalesce into large device reads.
    Flagged operands stream in stored layout, transposed in memory.

    Accounting note: with *distinct* operands block totals are exactly
    equal hinted or unhinted (the dense streaming contract).  When the
    same stored matrix is passed as both operands (``t(A) %*% A`` via a
    flag), the B scan re-reads blocks the A chunk may have left cached;
    that reuse depends on eviction timing, so hinted runs may drift a
    few percent in block totals — the same bounded exception the sparse
    kernels document.  Prefer :func:`crossprod_matmul` there anyway.
    """
    _check_conformable(a, b, trans_a, trans_b)
    n1, n2 = _effective_shape(a, trans_a)
    n3 = _effective_shape(b, trans_b)[1]
    q = max(1, int(memory_scalars / (n2 + n3)))
    out_dtype = np.result_type(a.dtype, b.dtype)
    out = store.create_matrix((n1, n3), layout="row", name=name,
                              dtype=out_dtype)
    hinting = a.store is store and b.store is store
    for r0 in range(0, n1, q):
        r1 = min(r0 + q, n1)
        with store.tracer.span("bnlj:chunk", cat="kernel", r0=r0, q=q):
            if hinting:
                store.pool.prefetch(
                    _operand_blocks(a, r0, r1, 0, n2, trans_a))
            a_rows = _read_operand(a, r0, r1, 0, n2, trans_a)
            t_rows = np.zeros((r1 - r0, n3), dtype=out_dtype)
            # Scan B one column-block at a time (a block of columns costs
            # the same I/O as one column when B uses column tiles).
            col_step = max(1,
                           b.tile_shape[0] if trans_b else b.tile_shape[1])
            for c0 in range(0, n3, col_step):
                c1 = min(c0 + col_step, n3)
                if hinting:
                    store.pool.prefetch(
                        _operand_blocks(b, 0, n2, c0, c1, trans_b))
                b_cols = _read_operand(b, 0, n2, c0, c1, trans_b)
                t_rows[:, c0:c1] = a_rows @ b_cols
            out.write_submatrix(r0, 0, t_rows)
    return out


def naive_tile_matmul(store: ArrayStore, a: TiledMatrix, b: TiledMatrix,
                      name: str | None = None) -> TiledMatrix:
    """The unblocked triple loop at tile granularity (baseline).

    Iterates output tiles in row-major order and re-reads the A tile row
    and B tile column for every output tile with no submatrix blocking —
    the access pattern of Example 2's straightforward algorithm, at tile
    rather than element granularity.  I/O grows as
    ``Theta(n1*n2*n3 / (B * t))`` for tile side t, which a small buffer
    pool cannot hide.  Deliberately unhinted: this is the baseline the
    prefetching benchmarks compare against.
    """
    _check_conformable(a, b)
    m, l = a.shape
    n = b.shape[1]
    out_dtype = np.result_type(a.dtype, b.dtype)
    out = store.create_matrix((m, n), layout="square", name=name,
                              dtype=out_dtype)
    th_a, tw_a = a.tile_shape
    th_b, tw_b = b.tile_shape
    th_o, tw_o = out.tile_shape
    for ti in range(out.grid[0]):
        for tj in range(out.grid[1]):
            r0, r1, c0, c1 = out.tile_bounds(ti, tj)
            acc = np.zeros((r1 - r0, c1 - c0), dtype=out_dtype)
            for k0 in range(0, l, tw_a):
                k1 = min(k0 + tw_a, l)
                a_sub = a.read_submatrix(r0, r1, k0, k1)
                b_sub = b.read_submatrix(k0, k1, c0, c1)
                acc += a_sub @ b_sub
            out.write_tile(ti, tj, acc)
    return out


ALGORITHMS = {
    "square": square_tile_matmul,
    "bnlj": bnlj_matmul,
}


def multiply_chain(store: ArrayStore, mats: list[TiledMatrix],
                   memory_scalars: int, order=None,
                   algorithm: str = "square",
                   out_tile_shape: tuple[int, int] | None = None
                   ) -> TiledMatrix:
    """Appendix-B schedule: one multiplication at a time, optimal order.

    ``order`` defaults to the DP-optimal parenthesization; pass
    ``repro.core.chain.in_order(len(mats))`` to reproduce R's left-deep
    evaluation for comparison.  ``out_tile_shape`` (square algorithm
    only) fixes the tile layout of every intermediate, so compressed
    stores keep multi-page tiles through the whole chain.
    """
    from repro.core.chain import optimal_order

    if len(mats) == 1:
        return mats[0]
    dims = [mats[0].shape[0]] + [m.shape[1] for m in mats]
    if order is None:
        order = optimal_order(dims)
    if algorithm == "square":
        multiply = lambda x, y: square_tile_matmul(  # noqa: E731
            store, x, y, memory_scalars,
            out_tile_shape=out_tile_shape)
    elif algorithm == "bnlj":
        multiply = lambda x, y: bnlj_matmul(  # noqa: E731
            store, x, y, memory_scalars)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    temps: list[TiledMatrix] = []

    def build(o) -> TiledMatrix:
        if isinstance(o, int):
            return mats[o]
        left = build(o[0])
        right = build(o[1])
        result = multiply(left, right)
        for t in (left, right):
            if t in temps:
                temps.remove(t)
                t.drop()
        temps.append(result)
        return result

    return build(order)
