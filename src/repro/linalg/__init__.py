"""Out-of-core linear algebra over the tile store (measured algorithms)."""

from .lu import lu_decompose, split_lu
from .matmul import (ALGORITHMS, bnlj_matmul, multiply_chain,
                     naive_tile_matmul, square_tile_matmul)
from .solve import backward_substitute, forward_substitute, lu_solve

__all__ = [
    "ALGORITHMS", "backward_substitute", "bnlj_matmul",
    "forward_substitute", "lu_decompose", "lu_solve", "multiply_chain",
    "naive_tile_matmul", "split_lu", "square_tile_matmul",
]
