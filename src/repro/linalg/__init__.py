"""Out-of-core linear algebra over the tile store (measured algorithms)."""

from .lu import PackedLU, SingularMatrixError, lu_decompose, split_lu
from .matmul import (ALGORITHMS, bnlj_matmul, crossprod_matmul,
                     multiply_chain, naive_tile_matmul,
                     square_tile_matmul)
from .solve import (backward_substitute, forward_substitute, lu_solve,
                    lu_solve_factored)

__all__ = [
    "ALGORITHMS", "PackedLU", "SingularMatrixError",
    "backward_substitute", "bnlj_matmul", "crossprod_matmul",
    "forward_substitute",
    "lu_decompose", "lu_solve", "lu_solve_factored", "multiply_chain",
    "naive_tile_matmul", "split_lu", "square_tile_matmul",
]
