"""Out-of-core sparse arrays over the counted storage stack.

``SparseTiledMatrix`` stores a matrix as a grid of CSR-encoded tiles on
the shared :class:`~repro.storage.pagefile.PageFile` /
:class:`~repro.storage.buffer_pool.BufferPool` /
:class:`~repro.storage.io_scheduler.IOScheduler` stack; empty tiles occupy
zero pages.  The kernels (``spmv``, ``spmm``, ``spgemm``) announce their
tile footprints via ``pool.prefetch()`` and are validated against the
nnz-parameterized cost models in :mod:`repro.core.costs`.
"""

from .kernels import spgemm, spmm, spmv
from .sparse_matrix import (SparseTiledMatrix, csr_from_dense, csr_matvec,
                            csr_to_dense, tile_words)

__all__ = [
    "SparseTiledMatrix",
    "csr_from_dense",
    "csr_matvec",
    "csr_to_dense",
    "spgemm",
    "spmm",
    "spmv",
    "tile_words",
]
