"""Out-of-core sparse matrices: CSR-encoded tiles over the page stack.

The dense :class:`~repro.storage.tile_store.TiledMatrix` proves the paper's
§5 argument — array semantics, not relational rows, should drive on-disk
layout — for dense data.  Real statistical workloads (design matrices,
graphs, term-document matrices) are overwhelmingly sparse, and dense tiling
then spends nearly all of its I/O moving zeros.  A
:class:`SparseTiledMatrix` keeps the same tile grid but stores each tile in
compressed sparse row (CSR) form:

- a **tile directory** maps grid coordinates of *nonempty* tiles to their
  page range and nonzero count; **empty tiles occupy zero pages** and cost
  zero I/O,
- each nonempty tile is serialized as ``[nnz][indptr][indices][data]``
  (all 8-byte words) into whole pages of the matrix's
  :class:`~repro.storage.pagefile.PageFile`,
- tiles are appended in linearization order, so a scan of the nonempty
  tiles in grid order produces sequential device I/O exactly like the
  dense store.

All reads and writes go through the shared
:class:`~repro.storage.buffer_pool.BufferPool`, so every block is counted
by the same :class:`~repro.storage.block_device.IOStats` contract the dense
stack uses, and kernels can announce tile footprints via
``pool.prefetch()``.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.storage import (Linearization, make_linearization,
                           new_pagefile)
from repro.storage.tile_store import ArrayStore, TiledMatrix

_FLOAT = np.float64
_INT = np.int64
_WORD_BYTES = 8


#: Sparse tiles default to this multiple of the dense square-tile side.
#: Dense tiles must fit one block, so their area is pinned to B scalars;
#: a CSR tile's page count scales with its nnz instead, so the grid can
#: use geometrically larger tiles — low-density regions then collapse
#: into *empty* tiles (zero pages) while a nonempty tile still spans
#: only ``O(nnz)`` pages.
SPARSE_TILE_FACTOR = 4


def default_sparse_tile_shape(shape: tuple[int, int],
                              scalars_per_block: int) -> tuple[int, int]:
    """Default square tile for a sparse matrix (4x the dense side)."""
    side = SPARSE_TILE_FACTOR * max(1, math.isqrt(scalars_per_block))
    return (min(shape[0], side), min(shape[1], side))


def csr_from_dense(tile: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR triple (indptr, indices, data) of a 2-D tile, scipy-free."""
    rows, cols = np.nonzero(tile)
    indptr = np.zeros(tile.shape[0] + 1, dtype=_INT)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.astype(_INT), tile[rows, cols].astype(_FLOAT)


def csr_to_dense(indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Densify a CSR triple into a fresh 2-D float64 array."""
    out = np.zeros(shape, dtype=_FLOAT)
    rows = np.repeat(np.arange(shape[0], dtype=_INT), np.diff(indptr))
    out[rows, indices] = data
    return out


def csr_matvec(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
               x: np.ndarray, out: np.ndarray) -> None:
    """Accumulate ``A @ x`` into ``out`` for a CSR tile (scipy-free)."""
    if data.size == 0:
        return
    rows = np.repeat(np.arange(out.size, dtype=_INT), np.diff(indptr))
    np.add.at(out, rows, data * x[indices])


def tile_words(rows: int, nnz: int) -> int:
    """8-byte words a CSR tile occupies on disk.

    One word for the nnz header, ``rows + 1`` for indptr, and ``nnz``
    each for the column indices and the values.
    """
    return rows + 2 + 2 * nnz


class SparseTiledMatrix:
    """A 2-D sparse array stored as a grid of CSR tiles on whole pages.

    The tile grid mirrors :class:`TiledMatrix` (same ``tile_shape`` /
    ``grid`` / ``tile_bounds`` geometry), but only nonempty tiles are
    backed by pages.  Instances are write-once: build them with
    :meth:`from_coo` / :meth:`from_dense` (or stream tiles through
    :meth:`append_tile`, in linearization order, during construction by
    a kernel such as ``spgemm``).
    """

    def __init__(self, store: ArrayStore, name: str,
                 shape: tuple[int, int], tile_shape: tuple[int, int],
                 linearization: str | Linearization = "row") -> None:
        n1, n2 = shape
        th, tw = tile_shape
        if n1 <= 0 or n2 <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        if th <= 0 or tw <= 0:
            raise ValueError(f"tile shape must be positive, got {tile_shape}")
        self.store = store
        self.name = name
        self.shape = (n1, n2)
        self.tile_shape = (min(th, n1), min(tw, n2))
        self.grid = (-(-n1 // self.tile_shape[0]),
                     -(-n2 // self.tile_shape[1]))
        if isinstance(linearization, Linearization):
            self.linearization = linearization
        else:
            self.linearization = make_linearization(
                linearization, self.grid[0], self.grid[1])
        self.file = new_pagefile(store.device, name=name)
        #: (ti, tj) -> (first_page, n_pages, nnz) for nonempty tiles only.
        self.directory: dict[tuple[int, int], tuple[int, int, int]] = {}
        self._row_index: dict[int, list[int]] = {}
        self._col_index: dict[int, list[int]] = {}
        self.nnz = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, store: ArrayStore, rows, cols, values,
                 shape: tuple[int, int],
                 tile_shape: tuple[int, int] | None = None,
                 linearization: str = "row",
                 name: str | None = None) -> "SparseTiledMatrix":
        """Build from 0-based COO triplets (duplicates are summed).

        Explicit zeros are dropped so the nnz directory stays honest.
        """
        i = np.asarray(rows, dtype=_INT).ravel()
        j = np.asarray(cols, dtype=_INT).ravel()
        x = np.asarray(values, dtype=_FLOAT).ravel()
        if not (i.size == j.size == x.size):
            raise ValueError(
                f"COO triplets must align: {i.size}, {j.size}, {x.size}")
        n1, n2 = int(shape[0]), int(shape[1])
        if i.size and (i.min() < 0 or i.max() >= n1
                       or j.min() < 0 or j.max() >= n2):
            raise IndexError(
                f"COO index outside {n1}x{n2} matrix")
        if tile_shape is None:
            tile_shape = default_sparse_tile_shape(
                (n1, n2), store.scalars_per_block)
        mat = cls(store, name or store._fresh_name("spmat"),
                  (n1, n2), tile_shape, linearization)
        # Coalesce duplicates (R's sparseMatrix sums repeated triplets).
        if i.size:
            flat = i * n2 + j
            order = np.argsort(flat, kind="stable")
            flat, i, j, x = flat[order], i[order], j[order], x[order]
            uniq, inverse = np.unique(flat, return_inverse=True)
            summed = np.zeros(uniq.size, dtype=_FLOAT)
            np.add.at(summed, inverse, x)
            i, j, x = uniq // n2, uniq % n2, summed
            keep = x != 0.0
            i, j, x = i[keep], j[keep], x[keep]
        th, tw = mat.tile_shape
        # Group triplets by tile and append in linearization order so a
        # grid-order scan of the nonempty tiles is sequential on disk.
        # The curve is evaluated once per distinct tile (O(grid) Python
        # calls), not once per nonzero.
        if i.size:
            tile_flat = (i // th) * mat.grid[1] + (j // tw)
            uniq_tiles, inverse = np.unique(tile_flat,
                                            return_inverse=True)
            uniq_pos = np.array(
                [mat.linearization.index(int(t // mat.grid[1]),
                                         int(t % mat.grid[1]))
                 for t in uniq_tiles], dtype=_INT)
            tile_pos = uniq_pos[inverse]
        else:
            tile_pos = np.empty(0, dtype=_INT)
        order = np.argsort(tile_pos, kind="stable")
        i, j, x, tile_pos = i[order], j[order], x[order], tile_pos[order]
        pos = 0
        while pos < i.size:
            end = pos
            while end < i.size and tile_pos[end] == tile_pos[pos]:
                end += 1
            ti, tj = mat.linearization.coords(int(tile_pos[pos]))
            r0, r1, c0, c1 = mat.tile_bounds(ti, tj)
            li, lj = i[pos:end] - r0, j[pos:end] - c0
            sub = np.argsort(li * (c1 - c0) + lj, kind="stable")
            li, lj, lx = li[sub], lj[sub], x[pos:end][sub]
            indptr = np.zeros(r1 - r0 + 1, dtype=_INT)
            np.add.at(indptr, li + 1, 1)
            np.cumsum(indptr, out=indptr)
            mat.append_tile(ti, tj, indptr, lj.astype(_INT), lx)
            pos = end
        return mat

    @classmethod
    def from_dense(cls, store: ArrayStore, values: np.ndarray,
                   tile_shape: tuple[int, int] | None = None,
                   linearization: str = "row",
                   name: str | None = None) -> "SparseTiledMatrix":
        """Build from a dense array, keeping only its nonzeros."""
        vals = np.asarray(values, dtype=_FLOAT)
        rows, cols = np.nonzero(vals)
        return cls.from_coo(store, rows, cols, vals[rows, cols],
                            vals.shape, tile_shape=tile_shape,
                            linearization=linearization, name=name)

    def append_tile(self, ti: int, tj: int, indptr: np.ndarray,
                    indices: np.ndarray, data: np.ndarray) -> None:
        """Serialize one CSR tile onto fresh pages and index it.

        Empty tiles (``data.size == 0``) are skipped entirely — no
        directory entry, no pages, no I/O.
        """
        self._check_tile(ti, tj)
        if (ti, tj) in self.directory:
            raise ValueError(f"tile ({ti},{tj}) already written")
        nnz = int(data.size)
        if nnz == 0:
            return
        r0, r1, _, c1 = self.tile_bounds(ti, tj)
        if indptr.size != r1 - r0 + 1 or int(indptr[-1]) != nnz:
            raise ValueError(
                f"tile ({ti},{tj}) CSR indptr does not describe its "
                f"{r1 - r0} rows / {nnz} nonzeros")
        payload = np.concatenate([
            np.asarray([nnz], dtype=_INT).view(np.uint8),
            np.ascontiguousarray(indptr, dtype=_INT).view(np.uint8),
            np.ascontiguousarray(indices, dtype=_INT).view(np.uint8),
            np.ascontiguousarray(data, dtype=_FLOAT).view(np.uint8),
        ])
        page_size = self.store.device.block_size
        n_pages = -(-payload.size // page_size)
        first_page = self.file.allocate_pages(n_pages)[0]
        for k in range(n_pages):
            chunk = payload[k * page_size: (k + 1) * page_size]
            self.store.pool.put(self.file.block_of(first_page + k), chunk)
        self.directory[(ti, tj)] = (first_page, n_pages, nnz)
        self._row_index.setdefault(ti, []).append(tj)
        self._col_index.setdefault(tj, []).append(ti)
        self.nnz += nnz

    def append_tile_dense(self, ti: int, tj: int,
                          values: np.ndarray) -> None:
        """Sparsify a dense tile and append it (zero tiles are skipped)."""
        r0, r1, c0, c1 = self.tile_bounds(ti, tj)
        vals = np.ascontiguousarray(values, dtype=_FLOAT)
        if vals.shape != (r1 - r0, c1 - c0):
            raise ValueError(
                f"tile ({ti},{tj}) expects shape {(r1 - r0, c1 - c0)}, "
                f"got {vals.shape}")
        self.append_tile(ti, tj, *csr_from_dense(vals))

    # ------------------------------------------------------------------
    # Geometry (mirrors TiledMatrix)
    # ------------------------------------------------------------------
    def tile_bounds(self, ti: int, tj: int) -> tuple[int, int, int, int]:
        """Return (row_lo, row_hi, col_lo, col_hi) of tile (ti, tj)."""
        self._check_tile(ti, tj)
        th, tw = self.tile_shape
        r0 = ti * th
        c0 = tj * tw
        return (r0, min(r0 + th, self.shape[0]),
                c0, min(c0 + tw, self.shape[1]))

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Yield every grid coordinate in linearization order."""
        total = self.grid[0] * self.grid[1]
        for pos in range(total):
            yield self.linearization.coords(pos)

    def nonempty_tiles(self) -> list[tuple[int, int]]:
        """Nonempty tile coordinates in on-disk (appended) order."""
        return sorted(self.directory,
                      key=lambda t: self.directory[t][0])

    def nonempty_in_row(self, ti: int) -> list[int]:
        """Column coordinates of the nonempty tiles in block row ti."""
        return sorted(self._row_index.get(ti, []))

    def nonempty_in_col(self, tj: int) -> list[int]:
        """Row coordinates of the nonempty tiles in block column tj."""
        return sorted(self._col_index.get(tj, []))

    def tile_nnz(self, ti: int, tj: int) -> int:
        self._check_tile(ti, tj)
        entry = self.directory.get((ti, tj))
        return entry[2] if entry else 0

    def tile_blocks(self, ti: int, tj: int) -> list[int]:
        """Device blocks backing tile (ti, tj) — empty list if empty."""
        entry = self.directory.get((ti, tj))
        if entry is None:
            self._check_tile(ti, tj)
            return []
        first_page, n_pages, _ = entry
        return self.file.blocks_of(range(first_page,
                                         first_page + n_pages))

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    @property
    def data_pages(self) -> int:
        """Pages actually occupied (empty tiles contribute nothing)."""
        return self.file.num_pages

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_tile_csr(self, ti: int, tj: int
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Read tile (ti, tj) as (indptr, indices, data); None if empty."""
        entry = self.directory.get((ti, tj))
        if entry is None:
            self._check_tile(ti, tj)
            return None
        r0, r1, _, _ = self.tile_bounds(ti, tj)
        frames = self.store.pool.get_many(self.tile_blocks(ti, tj))
        payload = np.concatenate([f for f in frames])
        words = payload.view(_INT)
        nnz = int(words[0])
        rows = r1 - r0
        indptr = words[1: rows + 2].copy()
        indices = words[rows + 2: rows + 2 + nnz].copy()
        data = payload.view(_FLOAT)[rows + 2 + nnz:
                                    rows + 2 + 2 * nnz].copy()
        return indptr, indices, data

    def read_tile(self, ti: int, tj: int) -> np.ndarray:
        """Read tile (ti, tj) densified (zeros for an empty tile)."""
        r0, r1, c0, c1 = self.tile_bounds(ti, tj)
        csr = self.read_tile_csr(ti, tj)
        if csr is None:
            return np.zeros((r1 - r0, c1 - c0), dtype=_FLOAT)
        indptr, indices, data = csr
        return csr_to_dense(indptr, indices, data, (r1 - r0, c1 - c0))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=_FLOAT)
        for ti, tj in self.nonempty_tiles():
            r0, r1, c0, c1 = self.tile_bounds(ti, tj)
            out[r0:r1, c0:c1] = self.read_tile(ti, tj)
        return out

    def to_dense(self, name: str | None = None) -> TiledMatrix:
        """Materialize as a dense TiledMatrix on the same tile grid.

        Using the same grid keeps every write tile-aligned, so the
        conversion costs exactly one write per dense tile and one read
        per nonempty sparse tile.
        """
        out = TiledMatrix(self.store,
                          name or self.store._fresh_name("densified"),
                          self.shape, self.tile_shape,
                          self.linearization.name)
        for ti, tj in out.tiles():
            out.write_tile(ti, tj, self.read_tile(ti, tj))
        return out

    def drop(self) -> None:
        for page in range(self.file.num_pages):
            self.store.pool.invalidate(self.file.block_of(page))
        self.file.drop()
        self.directory.clear()
        self._row_index.clear()
        self._col_index.clear()
        self.nnz = 0

    # ------------------------------------------------------------------
    def _check_tile(self, ti: int, tj: int) -> None:
        if not (0 <= ti < self.grid[0] and 0 <= tj < self.grid[1]):
            raise IndexError(
                f"tile ({ti},{tj}) outside grid {self.grid} of {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SparseTiledMatrix({self.name!r}, shape={self.shape}, "
                f"tile={self.tile_shape}, nnz={self.nnz}, "
                f"pages={self.data_pages})")
