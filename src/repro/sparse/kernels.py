"""I/O-measured sparse kernels: SpMV, SpMM, SpGEMM.

Each kernel runs against the counted storage stack and announces its tile
footprint through ``pool.prefetch()`` before reading it, exactly like the
dense ``square_tile_matmul`` — so the PR-1 scheduler turns the misses into
a few coalesced device calls without changing block totals.

The analytic twins live in :mod:`repro.core.costs` (``spmv_io``,
``spmm_io``, ``spgemm_io``); ``tests/sparse`` checks measured-vs-model
agreement the same way ``tests/linalg`` does for the dense algorithms.

Accounting note: hints are announced in pool-sized batches (see
:class:`_BatchedHints`), which keeps hinted block totals within a few
percent of the unhinted run.  Unlike the chunk-aligned dense streams,
exact equality is not guaranteed — batching shifts eviction *timing*,
so a vector chunk that happened to stay cached across block rows in the
unhinted run may be re-read in the hinted one.  Results are always
bitwise identical and call counts strictly drop.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import spmm_panel_width
from repro.storage import ArrayStore, TiledMatrix, TiledVector

from .sparse_matrix import SparseTiledMatrix, csr_matvec

_FLOAT = np.float64


def _check_conformable(a: SparseTiledMatrix, b) -> None:
    b_rows = b.length if isinstance(b, TiledVector) else b.shape[0]
    if a.shape[1] != b_rows:
        raise ValueError(
            f"non-conformable operands: {a.shape} x {(b_rows,)}")


def _vector_slice(x: TiledVector, lo: int, hi: int) -> np.ndarray:
    """Values ``x[lo:hi)`` read through the chunk grid."""
    parts = []
    for ci in range(lo // x.chunk, -(-hi // x.chunk)):
        c_lo, c_hi = x.chunk_bounds(ci)
        data = x.read_chunk(ci)
        parts.append(data[max(lo, c_lo) - c_lo: min(hi, c_hi) - c_lo])
    return np.concatenate(parts) if parts else np.empty(0, dtype=_FLOAT)


class _BatchedHints:
    """Announce per-tile footprints in batches the pool can hold.

    An oversized hint is clipped by the pool, and frames prefetched
    beyond what fits can be evicted before their demand read — the
    re-reads would badly inflate the block totals the cost models
    charge.  Capping each announcement at half the pool keeps every
    hinted block resident until it is consumed, mirroring the
    windowing of ``TiledVector.scan``.
    """

    def __init__(self, pool, groups: list[list[int]],
                 enabled: bool) -> None:
        self.pool = pool
        self.groups = groups
        self.enabled = enabled
        self.limit = max(1, pool.capacity // 2 - 2)
        self._next = 0

    def before(self, idx: int) -> None:
        """Ensure group ``idx`` has been announced (greedy lookahead)."""
        if not self.enabled or idx < self._next:
            return
        batch: list[int] = []
        t = idx
        while t < len(self.groups) and (
                not batch
                or len(batch) + len(self.groups[t]) <= self.limit):
            batch.extend(self.groups[t])
            t += 1
        if batch:
            self.pool.prefetch(batch)
        self._next = max(t, idx + 1)


class _StreamingVectorWriter:
    """Write a vector front to back in arbitrary-sized pieces.

    Block rows of SpMV produce ``tile_rows`` results at a time, which
    rarely align with the output's chunk grid; this buffers exactly one
    chunk so every chunk is still written once, in order.
    """

    def __init__(self, out: TiledVector) -> None:
        self.out = out
        self._buf = np.zeros(out.chunk, dtype=_FLOAT)
        self._filled = 0
        self._ci = 0

    def emit(self, piece: np.ndarray) -> None:
        pos = 0
        while pos < piece.size:
            lo, hi = self.out.chunk_bounds(self._ci)
            room = (hi - lo) - self._filled
            take = min(room, piece.size - pos)
            self._buf[self._filled: self._filled + take] = \
                piece[pos: pos + take]
            self._filled += take
            pos += take
            if self._filled == hi - lo:
                self.out.write_chunk(self._ci, self._buf[: hi - lo])
                self._ci += 1
                self._filled = 0

    def close(self) -> None:
        if self._filled:
            raise RuntimeError("vector writer closed mid-chunk")


def spmv(store: ArrayStore, a: SparseTiledMatrix, x: TiledVector,
         name: str | None = None) -> TiledVector:
    """``y = A x`` one block row at a time, skipping empty tiles.

    Per block row the footprint — every nonempty CSR tile plus the x
    chunks their column ranges cover — is announced up front; empty
    tiles cost nothing, which is where the win over dense tiling
    comes from.
    """
    _check_conformable(a, x)
    out = store.create_vector(a.shape[0], name=name)
    writer = _StreamingVectorWriter(out)
    hinting = a.store is store and x.store is store
    for ti in range(a.grid[0]):
        with store.tracer.span("spmv:block_row", cat="kernel", ti=ti):
            r0 = ti * a.tile_shape[0]
            r1 = min(r0 + a.tile_shape[0], a.shape[0])
            acc = np.zeros(r1 - r0, dtype=_FLOAT)
            tjs = a.nonempty_in_row(ti)
            groups: list[list[int]] = []
            seen_chunks: set[int] = set()
            for tj in tjs:
                keys = a.tile_blocks(ti, tj)
                _, _, c0, c1 = a.tile_bounds(ti, tj)
                fresh = [ci
                         for ci in range(c0 // x.chunk, -(-c1 // x.chunk))
                         if ci not in seen_chunks]
                seen_chunks.update(fresh)
                groups.append(keys + x.blocks_for_chunks(fresh))
            hints = _BatchedHints(store.pool, groups, hinting)
            for idx, tj in enumerate(tjs):
                hints.before(idx)
                indptr, indices, data = a.read_tile_csr(ti, tj)
                _, _, c0, c1 = a.tile_bounds(ti, tj)
                csr_matvec(indptr, indices, data,
                           _vector_slice(x, c0, c1), acc)
            writer.emit(acc)
    writer.close()
    return out


def _accumulate(parallel, acc, thunks):
    """``for fn in thunks: acc += fn()``, offloaded when possible.

    Same contract as the dense kernels' helper: ``parallel`` is
    duck-typed (``.accumulate``), the thunk stream is consumed lazily so
    hint announcements and tile reads stay on the calling thread in
    exact serial order, and the in-order fold keeps results bitwise
    identical to the serial loop.
    """
    if parallel is None:
        for fn in thunks:
            acc += fn()
        return acc
    return parallel.accumulate(acc, thunks)


def spmm(store: ArrayStore, a: SparseTiledMatrix, b: TiledMatrix,
         memory_scalars: int, name: str | None = None,
         parallel=None) -> TiledMatrix:
    """``C = A B`` with sparse A and dense tiled B, by column panels.

    The panel width comes from :func:`repro.core.costs.spmm_panel_width`
    so the measured schedule and the analytic model stay in lockstep.
    Within a panel, each block row reads only the nonempty A tiles and
    the B strips they touch; block rows with no nonzeros write their
    zero panel without reading anything.  ``parallel`` offloads the
    per-tile multiplies to worker threads exactly as in the dense
    kernels (reads stay serial; in-order accumulation).
    """
    _check_conformable(a, b)
    m, l = a.shape
    n = b.shape[1]
    th, tw = a.tile_shape
    pw = spmm_panel_width(memory_scalars, th, tw, n)
    out = store.create_matrix((m, n), tile_shape=a.tile_shape,
                              linearization=a.linearization.name,
                              name=name)
    hinting = a.store is store and b.store is store
    for j0 in range(0, n, pw):
        j1 = min(j0 + pw, n)
        for ti in range(a.grid[0]):
            with store.tracer.span("spmm:tile_batch", cat="kernel",
                                   j0=j0, ti=ti):
                r0 = ti * th
                r1 = min(r0 + th, m)
                acc = np.zeros((r1 - r0, j1 - j0), dtype=_FLOAT)
                tjs = a.nonempty_in_row(ti)
                groups = []
                for tj in tjs:
                    _, _, c0, c1 = a.tile_bounds(ti, tj)
                    groups.append(a.tile_blocks(ti, tj)
                                  + b.submatrix_blocks(c0, c1, j0, j1))
                hints = _BatchedHints(store.pool, groups, hinting)

                def steps(ti=ti, tjs=tjs, hints=hints, j0=j0, j1=j1):
                    for idx, tj in enumerate(tjs):
                        hints.before(idx)
                        _, _, c0, c1 = a.tile_bounds(ti, tj)
                        a_tile = a.read_tile(ti, tj)
                        b_strip = b.read_submatrix(c0, c1, j0, j1)
                        yield lambda a_t=a_tile, b_s=b_strip: a_t @ b_s

                acc = _accumulate(parallel, acc, steps())
                out.write_submatrix(r0, j0, acc)
    return out


def spgemm(store: ArrayStore, a: SparseTiledMatrix,
           b: SparseTiledMatrix,
           name: str | None = None) -> SparseTiledMatrix:
    """``C = A B`` with both operands sparse; C is built sparse too.

    Requires the k-grids to line up (``a`` tile width == ``b`` tile
    height).  Each output tile multiplies only the k-tiles where both
    operands are nonempty — the tile directories make that intersection
    free of I/O — and an all-zero result tile is never written at all.
    """
    _check_conformable(a, b)
    if a.tile_shape[1] != b.tile_shape[0]:
        raise ValueError(
            f"k-grids must align: A tiles {a.tile_shape} vs "
            f"B tiles {b.tile_shape}")
    m, n = a.shape[0], b.shape[1]
    out = SparseTiledMatrix(
        store, name or store._fresh_name("spgemm"), (m, n),
        (a.tile_shape[0], b.tile_shape[1]), a.linearization.name)
    hinting = a.store is store and b.store is store
    for ti, tj in out.tiles():
        ks = sorted(set(a.nonempty_in_row(ti))
                    & set(b.nonempty_in_col(tj)))
        if not ks:
            continue
        with store.tracer.span("spgemm:tile", cat="kernel",
                               ti=ti, tj=tj, k_tiles=len(ks)):
            groups = [a.tile_blocks(ti, k) + b.tile_blocks(k, tj)
                      for k in ks]
            hints = _BatchedHints(store.pool, groups, hinting)
            r0, r1, c0, c1 = out.tile_bounds(ti, tj)
            acc = np.zeros((r1 - r0, c1 - c0), dtype=_FLOAT)
            for idx, k in enumerate(ks):
                hints.before(idx)
                acc += a.read_tile(ti, k) @ b.read_tile(k, tj)
            out.append_tile_dense(ti, tj, acc)
    return out
